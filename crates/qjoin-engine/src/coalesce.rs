//! Cross-request coalescing of cold solves: the in-flight gate behind the engine's
//! serving path.
//!
//! The paper's §4 batching theorem says one shared divide-and-conquer recursion
//! answers k quantile targets for far less than k independent solves. The engine's
//! `quantile_batch` exploits that *within* one request; this module exploits it
//! *across* requests: concurrent cold exact requests against the same
//! `(plan id, database generation)` register their φ targets with a [`Gate`], the
//! first arrival becomes the **leader** and runs one batched solve over the merged
//! sorted targets, and every other request (**waiter**) receives its answer from the
//! shared batch — k waiters pay one shared recursion plus O(k) distribution instead
//! of k full solves.
//!
//! ## Rounds and leadership handoff
//!
//! A [`Flight`] lives in the gate's map while any solve for its key is in progress.
//! Targets that arrive while a round is already solving accumulate in `pending` and
//! are merged into the *next* round (the group-commit pattern: the busier the
//! server, the bigger — and proportionally cheaper — each batch). A leader solves
//! exactly one round; if new targets accumulated meanwhile it hands leadership to
//! one of their waiters (`needs_leader`) instead of looping forever, so leader
//! latency stays bounded by one shared solve. The flight is removed from the map
//! only when no targets are pending, and waiters register under the map lock, so a
//! request can never attach to a flight that is about to disappear.
//!
//! ## Lock order
//!
//! Map lock before flight-state lock, everywhere both are held. Solves run with
//! neither lock held.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// The coalescing scope: `(plan id, database generation)`. Requests against
/// different plans or different generations never share a batch.
pub(crate) type GateKey = (u64, u64);

/// How the gate served one request (the caller bumps its counters from this).
#[derive(Debug)]
pub(crate) struct GateOutcome<R, E> {
    /// This request's answer (an `Err` from the solving leader is fanned out to
    /// every request whose target it covered).
    pub result: Result<R, E>,
    /// Rounds this request led whose shared batch also served at least one waiter
    /// (0 for waiters and for uncontended solves).
    pub coalesced_rounds: u64,
    /// True when the answer came out of a batch solved by *another* request.
    pub was_follower: bool,
    /// The opaque tag the serving round's solve returned (the engine passes the
    /// leader's trace id here, so a follower's span can reference the trace that
    /// actually did the work). `None` when the solve reported no tag (tag 0).
    pub leader_tag: Option<u64>,
}

/// How the gate served one multi-φ request ([`Gate::serve_many`]).
#[derive(Debug)]
pub(crate) struct GateBatchOutcome<R, E> {
    /// One answer per requested φ, in input order (an `Err` from any covering
    /// round fails the whole request, exactly as an un-gated batch solve would).
    pub results: Result<Vec<R>, E>,
    /// Rounds this request led whose shared batch also served at least one waiter.
    pub coalesced_rounds: u64,
    /// True when every answer came out of batches solved by *other* requests.
    pub was_follower: bool,
    /// The first non-zero solve tag among the rounds that served this request's
    /// targets (see [`GateOutcome::leader_tag`]).
    pub leader_tag: Option<u64>,
}

/// A leader's own answers plus the tag of the round that produced them
/// (accumulated across the rounds the leader solves; see [`Gate::lead`]).
type TaggedResults<R, E> = (Result<Vec<R>, E>, Option<u64>);

/// Shared state of one in-flight coalescing group.
#[derive(Debug)]
struct FlightState<R, E> {
    /// φ targets awaiting the next round, deduplicated by bit pattern.
    pending: Vec<f64>,
    /// Published answers, keyed by φ bits, each carrying the solve tag of the
    /// round that produced it (0 when the solve reported none).
    results: HashMap<u64, Result<(R, u64), E>>,
    /// Followers that attached since the last publish (leader snapshots this to
    /// decide whether the round it just solved actually coalesced anything).
    attached: u64,
    /// Set by a leader that finished its round with targets still pending: the
    /// first woken waiter whose φ is unresolved takes over as leader.
    needs_leader: bool,
    /// Set when the flight is removed from the map; no further rounds will run.
    closed: bool,
}

/// One in-flight coalescing group (see the module docs).
#[derive(Debug)]
struct Flight<R, E> {
    state: Mutex<FlightState<R, E>>,
    cv: Condvar,
}

// Manual impls: `derive(Default)` would wrongly require `R: Default, E: Default`.
impl<R, E> Default for FlightState<R, E> {
    fn default() -> Self {
        FlightState {
            pending: Vec::new(),
            results: HashMap::new(),
            attached: 0,
            needs_leader: false,
            closed: false,
        }
    }
}

impl<R, E> Default for Flight<R, E> {
    fn default() -> Self {
        Flight {
            state: Mutex::new(FlightState::default()),
            cv: Condvar::new(),
        }
    }
}

/// The engine-wide in-flight gate: at most one [`Flight`] per key at a time.
#[derive(Debug)]
pub(crate) struct Gate<R, E> {
    inflight: Mutex<HashMap<GateKey, Arc<Flight<R, E>>>>,
}

impl<R, E> Default for Gate<R, E> {
    fn default() -> Self {
        Gate {
            inflight: Mutex::new(HashMap::new()),
        }
    }
}

impl<R: Clone, E: Clone> Gate<R, E> {
    pub fn new() -> Self {
        Gate {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Serves one φ target through the gate. `solve` receives a sorted, deduplicated
    /// batch of targets (always containing at least the caller's own φ when the
    /// caller leads) and must return one result per target, in order, plus an
    /// opaque tag published alongside the round's answers (the engine passes the
    /// solve's trace id; 0 means "no tag").
    ///
    /// The caller becomes the leader if no flight exists for `key`; otherwise it
    /// either takes an already-published answer, or registers its φ and waits for a
    /// round to deliver it (possibly being promoted to leader of that round).
    pub fn serve(
        &self,
        key: GateKey,
        phi: f64,
        solve: impl Fn(&[f64]) -> Result<(Vec<R>, u64), E>,
    ) -> GateOutcome<R, E> {
        let outcome = self.serve_many(key, &[phi], solve);
        GateOutcome {
            result: outcome
                .results
                .map(|mut results| results.pop().expect("one result per requested φ")),
            coalesced_rounds: outcome.coalesced_rounds,
            was_follower: outcome.was_follower,
            leader_tag: outcome.leader_tag,
        }
    }

    /// [`Gate::serve`] for a whole batch of φ targets at once: the multi-φ miss
    /// path of `quantile_batch`. All of the caller's unresolved targets register
    /// with the flight together, so a batch request folds into an in-flight round
    /// (or seeds one other requests fold into) instead of running its own solve
    /// next to it. Returns one answer per φ in input order.
    pub fn serve_many(
        &self,
        key: GateKey,
        phis: &[f64],
        solve: impl Fn(&[f64]) -> Result<(Vec<R>, u64), E>,
    ) -> GateBatchOutcome<R, E> {
        if phis.is_empty() {
            return GateBatchOutcome {
                results: Ok(Vec::new()),
                coalesced_rounds: 0,
                was_follower: false,
                leader_tag: None,
            };
        }
        let bits: Vec<u64> = phis.iter().map(|p| p.to_bits()).collect();
        let flight = {
            let mut map = self.inflight.lock().expect("gate map lock poisoned");
            match map.get(&key) {
                Some(flight) => {
                    let flight = Arc::clone(flight);
                    // Register under the map lock: a flight still in the map is
                    // guaranteed to run at least one more round before closing.
                    let mut state = flight.state.lock().expect("flight lock poisoned");
                    if let Some((results, leader_tag)) = collect_results(&state, &bits) {
                        // Shared batches already answered every target.
                        return GateBatchOutcome {
                            results,
                            coalesced_rounds: 0,
                            was_follower: true,
                            leader_tag,
                        };
                    }
                    for (&phi, b) in phis.iter().zip(&bits) {
                        if !state.results.contains_key(b)
                            && !state.pending.iter().any(|p| p.to_bits() == *b)
                        {
                            state.pending.push(phi);
                        }
                    }
                    state.attached += 1;
                    drop(state);
                    drop(map);
                    flight
                }
                None => {
                    let flight: Arc<Flight<R, E>> = Arc::new(Flight::default());
                    {
                        let mut state = flight.state.lock().expect("flight lock poisoned");
                        for (&phi, b) in phis.iter().zip(&bits) {
                            if !state.pending.iter().any(|p| p.to_bits() == *b) {
                                state.pending.push(phi);
                            }
                        }
                    }
                    map.insert(key, Arc::clone(&flight));
                    drop(map);
                    return self.lead(key, &flight, &bits, &solve);
                }
            }
        };
        // Follower: wait until rounds publish every one of our answers, or until
        // we are promoted to lead the round that contains the remainder.
        let mut state = flight.state.lock().expect("flight lock poisoned");
        loop {
            if let Some((results, leader_tag)) = collect_results(&state, &bits) {
                return GateBatchOutcome {
                    results,
                    coalesced_rounds: 0,
                    was_follower: true,
                    leader_tag,
                };
            }
            debug_assert!(!state.closed, "closed flight owes this waiter an answer");
            if state.needs_leader {
                state.needs_leader = false;
                drop(state);
                return self.lead(key, &flight, &bits, &solve);
            }
            state = flight.cv.wait(state).expect("flight lock poisoned");
        }
    }

    /// Runs one round as leader (plus close-or-handoff bookkeeping). Reached either
    /// by the flight's creator or by a waiter promoted via `needs_leader`. Every one
    /// of the leader's own targets is either already published or registered in
    /// `pending`, so the round it solves resolves all of them.
    fn lead(
        &self,
        key: GateKey,
        flight: &Arc<Flight<R, E>>,
        my_bits: &[u64],
        solve: &impl Fn(&[f64]) -> Result<(Vec<R>, u64), E>,
    ) -> GateBatchOutcome<R, E> {
        let mut coalesced_rounds = 0u64;
        let mut my_result: Option<TaggedResults<R, E>> = None;
        loop {
            // Take the next round, or close the flight if nothing is pending.
            // Map lock first: removal must be atomic with the last pending check so
            // no request can register into a flight that is closing.
            let round: Vec<f64> = {
                let mut map = self.inflight.lock().expect("gate map lock poisoned");
                let mut state = flight.state.lock().expect("flight lock poisoned");
                // Targets an earlier round already published need no re-solve
                // (answers are deterministic per key); their waiters read the
                // published results when notified.
                let taken = std::mem::take(&mut state.pending);
                let mut round: Vec<f64> = taken
                    .into_iter()
                    .filter(|p| !state.results.contains_key(&p.to_bits()))
                    .collect();
                if round.is_empty() {
                    state.closed = true;
                    map.remove(&key);
                    flight.cv.notify_all();
                    break;
                }
                round.sort_by(f64::total_cmp);
                round
            };
            match solve(&round) {
                Ok((results, tag)) => {
                    let mut state = flight.state.lock().expect("flight lock poisoned");
                    for (target, result) in round.iter().zip(results) {
                        state.results.insert(target.to_bits(), Ok((result, tag)));
                    }
                    if my_result.is_none() {
                        my_result = collect_results(&state, my_bits);
                    }
                    if state.attached > 0 {
                        coalesced_rounds += 1;
                        state.attached = 0;
                    }
                    let handoff = !state.pending.is_empty();
                    if handoff {
                        // New targets arrived mid-solve; one of their waiters leads
                        // the next round so our own latency stays bounded.
                        state.needs_leader = true;
                    }
                    flight.cv.notify_all();
                    drop(state);
                    if handoff {
                        break;
                    }
                    // Loop once more: either close the flight or serve a round that
                    // arrived between the publish above and the map lock.
                }
                Err(e) => {
                    // Fan the failure out to this round and everything pending:
                    // solve errors are deterministic per (plan, generation), so
                    // rerunning them for each waiter would fail identically.
                    let mut map = self.inflight.lock().expect("gate map lock poisoned");
                    let mut state = flight.state.lock().expect("flight lock poisoned");
                    for target in round.iter().chain(state.pending.clone().iter()) {
                        state.results.insert(target.to_bits(), Err(e.clone()));
                    }
                    state.pending.clear();
                    state.closed = true;
                    map.remove(&key);
                    flight.cv.notify_all();
                    if my_result.is_none() {
                        my_result = Some((Err(e), None));
                    }
                    break;
                }
            }
        }
        let (results, leader_tag) =
            my_result.expect("a led round always covers the leader's own φs");
        GateBatchOutcome {
            results,
            coalesced_rounds,
            // A promoted waiter solved its own targets; it never consumed another
            // request's batch, so it is not a coalesced waiter.
            was_follower: false,
            leader_tag,
        }
    }
}

/// `Some` once every requested bit has a published answer: the answers in request
/// order plus the first non-zero solve tag among them, or the first published
/// error (errors fan out to the whole flight, so any error fails the whole
/// request — identical to an un-gated batch solve).
#[allow(clippy::type_complexity)]
fn collect_results<R: Clone, E: Clone>(
    state: &FlightState<R, E>,
    bits: &[u64],
) -> Option<(Result<Vec<R>, E>, Option<u64>)> {
    let mut results = Vec::with_capacity(bits.len());
    let mut leader_tag = None;
    for b in bits {
        match state.results.get(b)? {
            Ok((result, tag)) => {
                if leader_tag.is_none() && *tag != 0 {
                    leader_tag = Some(*tag);
                }
                results.push(result.clone());
            }
            Err(e) => return Some((Err(e.clone()), None)),
        }
    }
    Some((Ok(results), leader_tag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;
    use std::thread;
    use std::time::Duration;

    type TestGate = Gate<f64, String>;

    #[test]
    fn uncontended_request_solves_itself() {
        let gate = TestGate::new();
        let calls = AtomicU64::new(0);
        let out = gate.serve((1, 1), 0.5, |phis| {
            calls.fetch_add(1, Ordering::SeqCst);
            assert_eq!(phis, &[0.5]);
            Ok((phis.iter().map(|p| p * 2.0).collect(), 0))
        });
        assert_eq!(out.result.unwrap(), 1.0);
        assert_eq!(out.coalesced_rounds, 0);
        assert!(!out.was_follower);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        // The flight is gone: the next request leads its own flight again.
        assert!(gate.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn identical_concurrent_targets_share_one_solve() {
        let gate = Arc::new(TestGate::new());
        let solves = Arc::new(AtomicU64::new(0));
        let in_solve = Arc::new(Barrier::new(2)); // solver + coordinator
        let release = Arc::new(Barrier::new(2));

        // Leader: its solve blocks until the coordinator releases it, guaranteeing
        // the followers attach while the round is in flight.
        let leader = {
            let (gate, solves) = (Arc::clone(&gate), Arc::clone(&solves));
            let (in_solve, release) = (Arc::clone(&in_solve), Arc::clone(&release));
            thread::spawn(move || {
                gate.serve((7, 3), 0.25, move |phis| {
                    solves.fetch_add(1, Ordering::SeqCst);
                    in_solve.wait();
                    release.wait();
                    Ok((phis.iter().map(|p| p + 1.0).collect(), 42))
                })
            })
        };
        in_solve.wait(); // the leader is now inside its solve
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let gate = Arc::clone(&gate);
                thread::spawn(move || {
                    gate.serve((7, 3), 0.25, |_| -> Result<(Vec<f64>, u64), String> {
                        panic!("followers of an identical target must never solve")
                    })
                })
            })
            .collect();
        // Give the followers time to attach, then let the round finish.
        thread::sleep(Duration::from_millis(50));
        release.wait();

        let led = leader.join().unwrap();
        assert_eq!(led.result.unwrap(), 1.25);
        assert_eq!(led.coalesced_rounds, 1, "the round served waiters");
        for f in followers {
            let out = f.join().unwrap();
            assert_eq!(out.result.unwrap(), 1.25);
            assert!(out.was_follower);
            assert_eq!(
                out.leader_tag,
                Some(42),
                "followers learn the leading solve's trace tag"
            );
        }
        assert_eq!(
            solves.load(Ordering::SeqCst),
            1,
            "one shared solve for all 5"
        );
    }

    #[test]
    fn distinct_targets_merge_into_the_next_round() {
        let gate = Arc::new(TestGate::new());
        let rounds = Arc::new(Mutex::new(Vec::<Vec<f64>>::new()));
        let in_solve = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));

        let leader = {
            let (gate, rounds) = (Arc::clone(&gate), Arc::clone(&rounds));
            let (in_solve, release) = (Arc::clone(&in_solve), Arc::clone(&release));
            thread::spawn(move || {
                gate.serve((1, 1), 0.5, move |phis| {
                    rounds.lock().unwrap().push(phis.to_vec());
                    if phis == [0.5] {
                        // Only the first round blocks; the handed-off round runs free.
                        in_solve.wait();
                        release.wait();
                    }
                    Ok((phis.to_vec(), 0))
                })
            })
        };
        in_solve.wait();
        // Three distinct targets arrive mid-round; they must merge into one
        // sorted second round, led by one promoted waiter.
        let stragglers: Vec<_> = [0.9, 0.1, 0.7]
            .into_iter()
            .map(|phi| {
                let (gate, rounds) = (Arc::clone(&gate), Arc::clone(&rounds));
                thread::spawn(move || {
                    gate.serve((1, 1), phi, move |phis| {
                        rounds.lock().unwrap().push(phis.to_vec());
                        Ok((phis.to_vec(), 0))
                    })
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(50));
        release.wait();

        let led = leader.join().unwrap();
        assert_eq!(led.result.unwrap(), 0.5);
        let outs: Vec<_> = stragglers.into_iter().map(|t| t.join().unwrap()).collect();
        for out in &outs {
            assert!(out.result.is_ok());
        }
        let rounds = rounds.lock().unwrap();
        assert_eq!(rounds[0], vec![0.5]);
        assert_eq!(rounds[1], vec![0.1, 0.7, 0.9], "merged and sorted");
        assert_eq!(rounds.len(), 2, "three stragglers shared one round");
        // Exactly one straggler was promoted to lead round 2; the other two were
        // served from its shared batch.
        assert_eq!(outs.iter().filter(|o| o.was_follower).count(), 2);
    }

    #[test]
    fn leader_errors_fan_out_to_every_waiter() {
        let gate = Arc::new(TestGate::new());
        let in_solve = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let leader = {
            let gate = Arc::clone(&gate);
            let (in_solve, release) = (Arc::clone(&in_solve), Arc::clone(&release));
            thread::spawn(move || {
                gate.serve((9, 9), 0.5, move |_| -> Result<(Vec<f64>, u64), String> {
                    in_solve.wait();
                    release.wait();
                    Err("boom".to_string())
                })
            })
        };
        in_solve.wait();
        let waiter = {
            let gate = Arc::clone(&gate);
            // A *different* φ pending at error time still gets the error (rerunning
            // would fail identically).
            thread::spawn(move || gate.serve((9, 9), 0.75, |_| Err("later".to_string())))
        };
        thread::sleep(Duration::from_millis(50));
        release.wait();
        assert_eq!(leader.join().unwrap().result.unwrap_err(), "boom");
        assert_eq!(waiter.join().unwrap().result.unwrap_err(), "boom");
        assert!(gate.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn batch_requests_fold_into_an_in_flight_round() {
        let gate = Arc::new(TestGate::new());
        let rounds = Arc::new(Mutex::new(Vec::<Vec<f64>>::new()));
        let in_solve = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));

        // A single-φ leader blocks mid-solve while two multi-φ batches attach.
        let leader = {
            let (gate, rounds) = (Arc::clone(&gate), Arc::clone(&rounds));
            let (in_solve, release) = (Arc::clone(&in_solve), Arc::clone(&release));
            thread::spawn(move || {
                gate.serve((4, 2), 0.5, move |phis| {
                    rounds.lock().unwrap().push(phis.to_vec());
                    if phis == [0.5] {
                        in_solve.wait();
                        release.wait();
                    }
                    Ok((phis.to_vec(), 0))
                })
            })
        };
        in_solve.wait();
        // Two overlapping batches; their union (minus what round 1 answers) must
        // come out as ONE merged, sorted, deduplicated second round.
        let batches: Vec<_> = [vec![0.1, 0.5, 0.9], vec![0.9, 0.3]]
            .into_iter()
            .map(|phis| {
                let (gate, rounds) = (Arc::clone(&gate), Arc::clone(&rounds));
                thread::spawn(move || {
                    let out = gate.serve_many((4, 2), &phis, move |round| {
                        rounds.lock().unwrap().push(round.to_vec());
                        Ok((round.to_vec(), 0))
                    });
                    (phis, out)
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(50));
        release.wait();

        assert_eq!(leader.join().unwrap().result.unwrap(), 0.5);
        let outs: Vec<_> = batches.into_iter().map(|t| t.join().unwrap()).collect();
        for (phis, out) in &outs {
            // Answers come back in the request's own input order.
            assert_eq!(out.results.as_ref().unwrap(), phis);
        }
        // Exactly one batch was promoted to lead round 2; the other followed.
        assert_eq!(outs.iter().filter(|(_, o)| o.was_follower).count(), 1);
        let rounds = rounds.lock().unwrap();
        assert_eq!(rounds[0], vec![0.5]);
        assert_eq!(
            rounds[1],
            vec![0.1, 0.3, 0.9],
            "batch targets merged, deduplicated (0.5, double 0.9), and sorted"
        );
        assert_eq!(rounds.len(), 2, "two batch requests shared one round");
        assert!(gate.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn serve_many_preserves_duplicate_targets_in_order() {
        let gate = TestGate::new();
        let out = gate.serve_many((6, 1), &[0.5, 0.2, 0.5], |phis| {
            assert_eq!(phis, &[0.2, 0.5], "solver sees the deduplicated round");
            Ok((phis.to_vec(), 0))
        });
        assert_eq!(out.results.unwrap(), vec![0.5, 0.2, 0.5]);
        assert!(!out.was_follower);
    }

    #[test]
    fn different_keys_never_share_a_flight() {
        let gate = TestGate::new();
        let out_a = gate.serve((1, 1), 0.5, |p| Ok((p.to_vec(), 0)));
        let out_b = gate.serve((1, 2), 0.5, |p| {
            Ok((p.iter().map(|x| x + 1.0).collect(), 0))
        });
        assert_eq!(out_a.result.unwrap(), 0.5);
        assert_eq!(out_b.result.unwrap(), 1.5);
    }
}
