//! # qjoin-engine
//!
//! A **persistent quantile-query engine** on top of `qjoin-core`: where the core
//! crates solve one `(instance, ranking, φ)` request from scratch, this crate keeps
//! state between requests so that the expensive preparation — validation, join-tree
//! derivation, Yannakakis counting, and the §5 dichotomy — is paid **once per
//! registration** instead of once per query.
//!
//! ```text
//!             ┌───────────────────────── Engine ─────────────────────────┐
//!  request ──▶│  LRU result cache (plan id, db generation, φ, accuracy)  │
//!             │      │ miss                                              │
//!             │      ▼                                                   │
//!             │  batched multi-φ solver (qjoin-core::batch)              │
//!             │      │ reads                                             │
//!             │      ▼                                                   │
//!             │  PreparedPlan (join tree + counts + dichotomy strategy)  │
//!             │      │ compiled against                                  │
//!             │      ▼                                                   │
//!             │  Catalog (named databases with generations)              │
//!             └──────────────────────────────────────────────────────────┘
//! ```
//!
//! | Component | Module |
//! |---|---|
//! | named databases + generations | [`catalog`] |
//! | compile-once registrations | [`plan`] |
//! | LRU result cache | [`cache`] |
//! | the serving facade | [`engine`] |
//! | `explain` / `explain analyze` reports | [`explain`] |
//! | the `qjoin` CLI session | [`cli`] |
//!
//! ## Quick example
//!
//! ```
//! use qjoin_engine::{Engine};
//! use qjoin_query::query::social_network_query;
//! use qjoin_query::variable::vars;
//! use qjoin_ranking::Ranking;
//! use qjoin_workload::social::SocialConfig;
//!
//! let (_, database) = SocialConfig { rows_per_relation: 120, ..Default::default() }
//!     .generate()
//!     .into_parts();
//! let engine = Engine::new();
//! engine.create_database("social", database).unwrap();
//! engine
//!     .register("likes", "social", social_network_query(), Ranking::sum(vars(&["l2", "l3"])))
//!     .unwrap();
//! // One shared pass solves all three fractions; repeats come from the cache.
//! let batch = engine.quantile_batch("likes", &[0.1, 0.5, 0.9]).unwrap();
//! assert_eq!(batch.len(), 3);
//! assert!(engine.quantile("likes", 0.5).unwrap().from_cache);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod cli;
mod coalesce;
pub mod engine;
mod error;
pub mod explain;
pub mod plan;
mod telemetry;

pub use cache::{CacheStats, LruCache, ShardedLru};
pub use catalog::{Catalog, CatalogEntry};
pub use engine::{
    Engine, EngineAnswer, EngineConfig, EngineCounters, EngineStats, PlanStorageStats,
};
pub use error::EngineError;
pub use explain::{AnalyzeReport, AnalyzeRound, ExplainReport};
pub use plan::{Accuracy, PlanStrategy, PreparedPlan};
