//! The `qjoin` binary: REPL + one-shot frontends over the quantile-query engine.
//! All logic lives in `qjoin_engine::cli` so it stays unit-testable.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(qjoin_engine::cli::main_with_args(&args));
}
