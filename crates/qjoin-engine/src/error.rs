//! Error types for the engine layer.

use qjoin_core::CoreError;
use std::fmt;

/// Errors raised by the quantile-query engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// No database with this name exists in the catalog.
    UnknownDatabase(String),
    /// A database with this name already exists (use `replace_database` to swap it).
    DuplicateDatabase(String),
    /// No plan with this name is registered.
    UnknownPlan(String),
    /// A plan with this name is already registered.
    DuplicatePlan(String),
    /// The plan's strategy cannot serve the request as asked (e.g. an exact quantile
    /// on an intractable SUM plan, or an approximate quantile on a non-SUM plan).
    PlanCannotServe {
        /// The plan name.
        plan: String,
        /// Why the request cannot be served, and what to do instead.
        reason: String,
    },
    /// An algorithmic error from `qjoin-core`.
    Core(CoreError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownDatabase(name) => {
                write!(f, "no database named {name:?} in the catalog")
            }
            EngineError::DuplicateDatabase(name) => write!(
                f,
                "a database named {name:?} already exists; use replace_database to swap it"
            ),
            EngineError::UnknownPlan(name) => write!(f, "no plan named {name:?} is registered"),
            EngineError::DuplicatePlan(name) => {
                write!(f, "a plan named {name:?} is already registered")
            }
            EngineError::PlanCannotServe { plan, reason } => {
                write!(f, "plan {plan:?} cannot serve this request: {reason}")
            }
            EngineError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

impl From<qjoin_exec::ExecError> for EngineError {
    fn from(e: qjoin_exec::ExecError) -> Self {
        EngineError::Core(CoreError::from(e))
    }
}

impl From<qjoin_query::QueryError> for EngineError {
    fn from(e: qjoin_query::QueryError) -> Self {
        EngineError::Core(CoreError::Query(e))
    }
}

impl From<qjoin_data::DataError> for EngineError {
    fn from(e: qjoin_data::DataError) -> Self {
        EngineError::Core(CoreError::Data(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_offender() {
        assert!(EngineError::UnknownDatabase("social".into())
            .to_string()
            .contains("social"));
        assert!(EngineError::DuplicatePlan("p".into())
            .to_string()
            .contains("already registered"));
        let e = EngineError::PlanCannotServe {
            plan: "p".into(),
            reason: "intractable".into(),
        };
        assert!(e.to_string().contains("intractable"));
    }

    #[test]
    fn core_errors_convert() {
        let e: EngineError = CoreError::NoAnswers.into();
        assert_eq!(e, EngineError::Core(CoreError::NoAnswers));
    }
}
