//! Engine-side telemetry plumbing: the bridge between qjoin-core's
//! [`SolveTracer`] hooks and the shared [`qjoin_telemetry::Registry`].
//!
//! One [`RegistryTracer`] is built per uncached solve. It resolves the per-plan
//! histogram handles up front (a few registry lookups on the cold path only),
//! then records each phase event with a couple of relaxed atomic adds:
//!
//! * `qjoin_solve_phase_seconds{plan, phase}` — one histogram per
//!   [`SolvePhase`], so trim-round blowups and materialize-heavy shapes are
//!   visible per plan;
//! * `qjoin_solve_seconds{plan}` — the whole solve, recorded by
//!   [`RegistryTracer::finish`];
//! * `qjoin_solve_rounds_total{plan}` — pivoting rounds, counted from
//!   [`SolvePhase::TrimRound`] events;
//! * `qjoin_solve_encoded_total{plan}` / `qjoin_solve_row_total{plan}` — which
//!   execution path actually produced the answers, making encoded-vs-row
//!   fallback visible per query shape;
//! * `qjoin_solve_parallel_seconds{plan, phase}` — wall time each phase spent
//!   inside chunk-executor regions, so `parallel / phase` approximates how much
//!   of a phase the work-stealing pool actually covers.

use qjoin_core::{PhaseContext, SolvePhase, SolveTracer};
use qjoin_telemetry::{ArgValue, Counter, Histogram, Registry, SpanId, TraceBuilder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A [`SolveTracer`] that records phase timings into per-plan histograms of a
/// shared registry (see the module docs).
pub(crate) struct RegistryTracer {
    solve: Arc<Histogram>,
    phases: [Arc<Histogram>; 4],
    parallel: [Arc<Histogram>; 4],
    rounds: AtomicU64,
    rounds_total: Arc<Counter>,
    encoded_total: Arc<Counter>,
    row_total: Arc<Counter>,
}

impl RegistryTracer {
    /// Resolves (or creates) this plan's metric handles in the registry.
    pub(crate) fn for_plan(registry: &Registry, plan: &str) -> Self {
        let labels = [("plan", plan)];
        RegistryTracer {
            solve: registry.histogram("qjoin_solve_seconds", &labels),
            phases: SolvePhase::ALL.map(|phase| {
                registry.histogram(
                    "qjoin_solve_phase_seconds",
                    &[("plan", plan), ("phase", phase.label())],
                )
            }),
            parallel: SolvePhase::ALL.map(|phase| {
                registry.histogram(
                    "qjoin_solve_parallel_seconds",
                    &[("plan", plan), ("phase", phase.label())],
                )
            }),
            rounds: AtomicU64::new(0),
            rounds_total: registry.counter("qjoin_solve_rounds_total", &labels),
            encoded_total: registry.counter("qjoin_solve_encoded_total", &labels),
            row_total: registry.counter("qjoin_solve_row_total", &labels),
        }
    }

    /// Records the whole-solve duration, flushes the round count, and attributes
    /// the solve to the encoded or row path. Call once, after the solve returns.
    pub(crate) fn finish(&self, elapsed: Duration, used_encoded_path: bool) {
        self.solve.record_duration(elapsed);
        self.rounds_total.add(self.rounds.load(Ordering::Relaxed));
        if used_encoded_path {
            self.encoded_total.inc();
        } else {
            self.row_total.inc();
        }
    }

    /// Pivoting rounds observed so far (one per [`SolvePhase::TrimRound`] event).
    pub(crate) fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }
}

/// A [`SolveTracer`] that feeds the per-plan histograms *and* (when a trace is
/// being recorded) turns every structured phase event into a child span of the
/// solve span: round index, pre-trim candidate count, `n_lt`/`n_eq`/`n_gt`
/// split, pivot slot count, routed-target count, and materialized-leaf size all
/// land as span arguments, so one recorded trace explains where a solve's time
/// went and why.
pub(crate) struct RecordingTracer {
    registry: RegistryTracer,
    /// `(builder, solve span id)` when spans are being recorded; phases parent
    /// to the solve span, which the engine records when the solve finishes.
    recording: Option<(TraceBuilder, SpanId)>,
}

impl RecordingTracer {
    pub(crate) fn new(registry: RegistryTracer, recording: Option<(TraceBuilder, SpanId)>) -> Self {
        RecordingTracer {
            registry,
            recording,
        }
    }

    pub(crate) fn registry(&self) -> &RegistryTracer {
        &self.registry
    }

    /// Places a span of length `elapsed` ending *now* (phase events are
    /// reported at phase end, so the start is reconstructed by subtraction).
    fn record_span(
        &self,
        name: &'static str,
        elapsed: Duration,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some((builder, solve_span)) = &self.recording {
            let start = Instant::now()
                .checked_sub(elapsed)
                .unwrap_or_else(|| builder.epoch());
            builder.record_new(Some(*solve_span), name, start, elapsed, args);
        }
    }
}

impl SolveTracer for RecordingTracer {
    fn phase(&self, phase: SolvePhase, elapsed: Duration) {
        self.registry.phase(phase, elapsed);
        self.record_span(phase.label(), elapsed, Vec::new());
    }

    fn phase_event(&self, phase: SolvePhase, elapsed: Duration, ctx: &PhaseContext) {
        self.registry.phase(phase, elapsed);
        if self.recording.is_none() {
            return;
        }
        let mut args = Vec::with_capacity(8);
        let mut push = |key, value: Option<u64>| {
            if let Some(v) = value {
                args.push((key, ArgValue::U64(v)));
            }
        };
        push("round", ctx.round);
        push("candidates", ctx.candidates);
        push("n_lt", ctx.n_lt);
        push("n_eq", ctx.n_eq);
        push("n_gt", ctx.n_gt);
        push("pivot_slots", ctx.pivot_slots);
        push("targets", ctx.targets);
        push("materialized", ctx.materialized);
        self.record_span(phase.label(), elapsed, args);
    }

    fn parallel(&self, phase: SolvePhase, elapsed: Duration) {
        self.registry.parallel(phase, elapsed);
    }
}

impl SolveTracer for RegistryTracer {
    fn phase(&self, phase: SolvePhase, elapsed: Duration) {
        let index = SolvePhase::ALL
            .iter()
            .position(|p| *p == phase)
            .expect("SolvePhase::ALL covers every phase");
        self.phases[index].record_duration(elapsed);
        if phase == SolvePhase::TrimRound {
            self.rounds.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn parallel(&self, phase: SolvePhase, elapsed: Duration) {
        let index = SolvePhase::ALL
            .iter()
            .position(|p| *p == phase)
            .expect("SolvePhase::ALL covers every phase");
        self.parallel[index].record_duration(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_records_per_phase_and_counts_rounds() {
        let registry = Registry::new();
        let tracer = RegistryTracer::for_plan(&registry, "likes");
        tracer.phase(SolvePhase::Prepare, Duration::from_micros(5));
        tracer.phase(SolvePhase::PivotScan, Duration::from_micros(2));
        tracer.phase(SolvePhase::TrimRound, Duration::from_micros(9));
        tracer.phase(SolvePhase::TrimRound, Duration::from_micros(7));
        tracer.finish(Duration::from_micros(30), true);

        let snapshot = registry.snapshot();
        let plan = [("plan", "likes")];
        assert_eq!(
            snapshot
                .histogram("qjoin_solve_seconds", &plan)
                .unwrap()
                .count(),
            1
        );
        assert_eq!(
            snapshot
                .histogram(
                    "qjoin_solve_phase_seconds",
                    &[("plan", "likes"), ("phase", "trim-round")]
                )
                .unwrap()
                .count(),
            2
        );
        assert_eq!(snapshot.counter("qjoin_solve_rounds_total", &plan), Some(2));
        assert_eq!(
            snapshot.counter("qjoin_solve_encoded_total", &plan),
            Some(1)
        );
        assert_eq!(snapshot.counter("qjoin_solve_row_total", &plan), Some(0));
    }
}
