//! Engine-side telemetry plumbing: the bridge between qjoin-core's
//! [`SolveTracer`] hooks and the shared [`qjoin_telemetry::Registry`].
//!
//! One [`RegistryTracer`] is built per uncached solve. It resolves the per-plan
//! histogram handles up front (a few registry lookups on the cold path only),
//! then records each phase event with a couple of relaxed atomic adds:
//!
//! * `qjoin_solve_phase_seconds{plan, phase}` — one histogram per
//!   [`SolvePhase`], so trim-round blowups and materialize-heavy shapes are
//!   visible per plan;
//! * `qjoin_solve_seconds{plan}` — the whole solve, recorded by
//!   [`RegistryTracer::finish`];
//! * `qjoin_solve_rounds_total{plan}` — pivoting rounds, counted from
//!   [`SolvePhase::TrimRound`] events;
//! * `qjoin_solve_encoded_total{plan}` / `qjoin_solve_row_total{plan}` — which
//!   execution path actually produced the answers, making encoded-vs-row
//!   fallback visible per query shape;
//! * `qjoin_solve_parallel_seconds{plan, phase}` — wall time each phase spent
//!   inside chunk-executor regions, so `parallel / phase` approximates how much
//!   of a phase the work-stealing pool actually covers.

use qjoin_core::{SolvePhase, SolveTracer};
use qjoin_telemetry::{Counter, Histogram, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A [`SolveTracer`] that records phase timings into per-plan histograms of a
/// shared registry (see the module docs).
pub(crate) struct RegistryTracer {
    solve: Arc<Histogram>,
    phases: [Arc<Histogram>; 4],
    parallel: [Arc<Histogram>; 4],
    rounds: AtomicU64,
    rounds_total: Arc<Counter>,
    encoded_total: Arc<Counter>,
    row_total: Arc<Counter>,
}

impl RegistryTracer {
    /// Resolves (or creates) this plan's metric handles in the registry.
    pub(crate) fn for_plan(registry: &Registry, plan: &str) -> Self {
        let labels = [("plan", plan)];
        RegistryTracer {
            solve: registry.histogram("qjoin_solve_seconds", &labels),
            phases: SolvePhase::ALL.map(|phase| {
                registry.histogram(
                    "qjoin_solve_phase_seconds",
                    &[("plan", plan), ("phase", phase.label())],
                )
            }),
            parallel: SolvePhase::ALL.map(|phase| {
                registry.histogram(
                    "qjoin_solve_parallel_seconds",
                    &[("plan", plan), ("phase", phase.label())],
                )
            }),
            rounds: AtomicU64::new(0),
            rounds_total: registry.counter("qjoin_solve_rounds_total", &labels),
            encoded_total: registry.counter("qjoin_solve_encoded_total", &labels),
            row_total: registry.counter("qjoin_solve_row_total", &labels),
        }
    }

    /// Records the whole-solve duration, flushes the round count, and attributes
    /// the solve to the encoded or row path. Call once, after the solve returns.
    pub(crate) fn finish(&self, elapsed: Duration, used_encoded_path: bool) {
        self.solve.record_duration(elapsed);
        self.rounds_total.add(self.rounds.load(Ordering::Relaxed));
        if used_encoded_path {
            self.encoded_total.inc();
        } else {
            self.row_total.inc();
        }
    }
}

impl SolveTracer for RegistryTracer {
    fn phase(&self, phase: SolvePhase, elapsed: Duration) {
        let index = SolvePhase::ALL
            .iter()
            .position(|p| *p == phase)
            .expect("SolvePhase::ALL covers every phase");
        self.phases[index].record_duration(elapsed);
        if phase == SolvePhase::TrimRound {
            self.rounds.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn parallel(&self, phase: SolvePhase, elapsed: Duration) {
        let index = SolvePhase::ALL
            .iter()
            .position(|p| *p == phase)
            .expect("SolvePhase::ALL covers every phase");
        self.parallel[index].record_duration(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_records_per_phase_and_counts_rounds() {
        let registry = Registry::new();
        let tracer = RegistryTracer::for_plan(&registry, "likes");
        tracer.phase(SolvePhase::Prepare, Duration::from_micros(5));
        tracer.phase(SolvePhase::PivotScan, Duration::from_micros(2));
        tracer.phase(SolvePhase::TrimRound, Duration::from_micros(9));
        tracer.phase(SolvePhase::TrimRound, Duration::from_micros(7));
        tracer.finish(Duration::from_micros(30), true);

        let snapshot = registry.snapshot();
        let plan = [("plan", "likes")];
        assert_eq!(
            snapshot
                .histogram("qjoin_solve_seconds", &plan)
                .unwrap()
                .count(),
            1
        );
        assert_eq!(
            snapshot
                .histogram(
                    "qjoin_solve_phase_seconds",
                    &[("plan", "likes"), ("phase", "trim-round")]
                )
                .unwrap()
                .count(),
            2
        );
        assert_eq!(snapshot.counter("qjoin_solve_rounds_total", &plan), Some(2));
        assert_eq!(
            snapshot.counter("qjoin_solve_encoded_total", &plan),
            Some(1)
        );
        assert_eq!(snapshot.counter("qjoin_solve_row_total", &plan), Some(0));
    }
}
