//! `explain`: a static report of how a plan would serve a φ-quantile, and
//! `explain analyze`: the same report plus an actual traced solve.
//!
//! The static half reads only compile-time facts off the
//! [`PreparedPlan`](crate::plan::PreparedPlan): the
//! §5 dichotomy class the registration landed in (and why), the join-tree
//! shape the §3 recursion will walk, whether the gap-encoded fast path is
//! available, `|Q(D)|`, and the target rank `⌈φ·|Q(D)|⌉` the pivoting search
//! will steer toward. It never touches tuple data, so `explain` is safe to run
//! against a plan of any size.
//!
//! The analyze half runs one real **uncached** solve under a dedicated span
//! trace (bypassing the result cache and the coalescing gate, so the observed
//! rounds are always the plan's own work) and folds the recorded spans back
//! into per-round observations: pre-trim candidate count and the
//! `n_lt`/`n_eq`/`n_gt` split of every trim round, the backend that actually
//! produced the answer, and the materialized leaf size. The trace also lands
//! in the flight recorder, so `trace id <id>` / `trace chrome <id>` can replay
//! exactly the solve the report summarizes.

use crate::engine::Engine;
use crate::error::EngineError;
use crate::plan::{Accuracy, PlanStrategy};
use qjoin_telemetry::{Trace, TraceId};
use std::fmt;

/// The ε used by `explain analyze` against plans whose exact SUM path is
/// intractable: analyze must observe *some* solve, and the approximate path is
/// the only one such plans can serve.
pub const EXPLAIN_ANALYZE_EPSILON: f64 = 0.05;

/// What `explain <plan> <phi>` reports: the plan's compile-time facts plus,
/// for `explain analyze`, one traced solve's observations.
#[derive(Clone, Debug)]
pub struct ExplainReport {
    /// The plan name.
    pub plan: String,
    /// The catalog database the plan reads.
    pub database: String,
    /// The database generation the plan was compiled against.
    pub generation: u64,
    /// The dichotomy class label (`minmax`, `lex`, `sum-single-atom`,
    /// `sum-adjacent-pair`, `sum-approximate-only`).
    pub strategy: &'static str,
    /// One sentence placing the plan in the paper's §5 dichotomy.
    pub dichotomy: String,
    /// True when the plan can serve exact quantiles.
    pub supports_exact: bool,
    /// Atoms (= join-tree nodes) in the plan's join tree.
    pub join_tree_atoms: usize,
    /// Height of the join tree.
    pub join_tree_height: usize,
    /// True when every node has at most two children.
    pub join_tree_binary: bool,
    /// True when the gap-encoded instance compiled, i.e. the encoded solve
    /// path is available for exact requests.
    pub encoded_available: bool,
    /// `|Q(D)|` from the compile-time Yannakakis counting pass.
    pub total_answers: u128,
    /// The requested fraction.
    pub phi: f64,
    /// The 0-based rank `target_rank(φ, |Q(D)|)` the pivoting search steers
    /// toward (`None` when the join is empty).
    pub target_rank: Option<u128>,
    /// Present for `explain analyze`: observations from one traced solve.
    pub analyze: Option<AnalyzeReport>,
}

/// Observations folded out of one traced, uncached solve.
#[derive(Clone, Debug)]
pub struct AnalyzeReport {
    /// The trace id the solve recorded under (replayable via `trace id` /
    /// `trace chrome` while it stays in the flight recorder).
    pub trace: TraceId,
    /// Which execution path produced the answer: `encoded` or `row`.
    pub backend: String,
    /// The accuracy the analyze solve ran at (approximate for plans whose
    /// exact path is intractable).
    pub accuracy: Accuracy,
    /// Pivoting rounds the solve reported.
    pub rounds: u64,
    /// Per trim round: the round index, pre-trim candidate count, and the
    /// `n_lt`/`n_eq`/`n_gt` split around the pivot, in round order.
    pub per_round: Vec<AnalyzeRound>,
    /// Whole-solve wall time in microseconds.
    pub solve_us: f64,
    /// Tuples materialized by the final leaf resolution, when observed.
    pub materialized: Option<u64>,
}

/// One observed trim round.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalyzeRound {
    /// The recursion round index (0-based).
    pub round: u64,
    /// Candidate answers entering the round.
    pub candidates: u64,
    /// Answers ranked strictly below the pivot.
    pub n_lt: u64,
    /// Answers tied with the pivot.
    pub n_eq: u64,
    /// Answers ranked strictly above the pivot.
    pub n_gt: u64,
    /// Time spent in the round's trim, in microseconds.
    pub dur_us: f64,
}

/// The §5 dichotomy sentence for one strategy.
fn dichotomy_sentence(strategy: &PlanStrategy) -> String {
    match strategy {
        PlanStrategy::MinMax => "MIN/MAX ranking: tractable for every acyclic query \
             (Theorem 5.3) — exact pivoting with Algorithm 3 trims."
            .to_string(),
        PlanStrategy::Lex => "LEX ranking: tractable for every acyclic query — exact \
             pivoting with the §5.2 lexicographic trimmer."
            .to_string(),
        PlanStrategy::SumSingleAtom { .. } => "SUM with every weighted variable in one atom: the \
             tractable side of the Theorem 5.6 dichotomy — exact \
             linear-time filter trims."
            .to_string(),
        PlanStrategy::SumAdjacentPair { atoms } => format!(
            "SUM covered by the two adjacent join-tree atoms {} and {}: \
             the tractable side of the Theorem 5.6 dichotomy — exact \
             O(n log n) trims (Lemma 5.5).",
            atoms.0, atoms.1
        ),
        PlanStrategy::SumApproximateOnly { witness } => format!(
            "SUM on the intractable side of the Theorem 5.6 dichotomy \
             ({witness}): exact quantiles are NP-hard here, only the \
             ε-approximate path is available."
        ),
    }
}

impl ExplainReport {
    /// Renders the report as the CLI's multi-line `explain` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        use fmt::Write as _;
        let _ = writeln!(
            out,
            "plan {} on {} (generation {})",
            self.plan, self.database, self.generation
        );
        let _ = writeln!(out, "  dichotomy class: {}", self.strategy);
        let _ = writeln!(out, "    {}", self.dichotomy);
        let _ = writeln!(
            out,
            "  join tree: {} atoms, height {}, {}",
            self.join_tree_atoms,
            self.join_tree_height,
            if self.join_tree_binary {
                "binary"
            } else {
                "non-binary"
            }
        );
        let _ = writeln!(
            out,
            "  encoded fast path: {}",
            if self.encoded_available {
                "available"
            } else {
                "unavailable (row path only)"
            }
        );
        let _ = writeln!(out, "  |Q(D)| = {} answers", self.total_answers);
        match self.target_rank {
            Some(rank) => {
                let _ = writeln!(out, "  phi={:.4} targets rank {} (0-based)", self.phi, rank);
            }
            None => {
                let _ = writeln!(out, "  phi={:.4}: the join is empty", self.phi);
            }
        }
        if let Some(analyze) = &self.analyze {
            let _ = writeln!(
                out,
                "  analyze: solved in {:.3}us on the {} path ({} round{}, {}, trace {})",
                analyze.solve_us,
                analyze.backend,
                analyze.rounds,
                if analyze.rounds == 1 { "" } else { "s" },
                match analyze.accuracy {
                    Accuracy::Exact => "exact".to_string(),
                    Accuracy::Approximate { epsilon } => format!("approximate eps={epsilon}"),
                    Accuracy::Bounded { epsilon, delta, .. } => {
                        format!("sampled eps={epsilon} delta={delta}")
                    }
                },
                analyze.trace,
            );
            for round in &analyze.per_round {
                let _ = writeln!(
                    out,
                    "    round {}: {} candidates -> n_lt={} n_eq={} n_gt={} ({:.3}us)",
                    round.round, round.candidates, round.n_lt, round.n_eq, round.n_gt, round.dur_us
                );
            }
            if let Some(materialized) = analyze.materialized {
                let _ = writeln!(out, "    materialized {materialized} leaf tuples");
            }
        }
        out
    }
}

/// Folds the spans of one traced solve into an [`AnalyzeReport`].
/// Returns `None` when the trace holds no solve span (tracing disabled).
pub(crate) fn analyze_from_trace(trace: &Trace, accuracy: Accuracy) -> Option<AnalyzeReport> {
    let solve = trace.spans_named("solve").next()?;
    let backend = solve
        .arg("backend")
        .and_then(|v| v.as_str())
        .unwrap_or("unknown")
        .to_string();
    let rounds = solve.arg("rounds").and_then(|v| v.as_u64()).unwrap_or(0);
    let mut per_round: Vec<AnalyzeRound> = trace
        .spans_named("trim-round")
        .map(|span| {
            let get = |key: &str| span.arg(key).and_then(|v| v.as_u64()).unwrap_or(0);
            AnalyzeRound {
                round: get("round"),
                candidates: get("candidates"),
                n_lt: get("n_lt"),
                n_eq: get("n_eq"),
                n_gt: get("n_gt"),
                dur_us: span.dur_ns as f64 / 1_000.0,
            }
        })
        .collect();
    per_round.sort_by_key(|r| r.round);
    let materialized = trace
        .spans_named("materialize")
        .filter_map(|span| span.arg("materialized").and_then(|v| v.as_u64()))
        .max();
    Some(AnalyzeReport {
        trace: trace.id,
        backend,
        accuracy,
        rounds,
        per_round,
        solve_us: solve.dur_ns as f64 / 1_000.0,
        materialized,
    })
}

impl Engine {
    /// Explains how `plan` would serve a φ-quantile: the §5 dichotomy class it
    /// compiled into, the join-tree shape, encoded-path availability, and the
    /// target rank. With `analyze`, additionally runs one real uncached solve
    /// under a span trace (exact when the plan supports it, ε-approximate
    /// otherwise) and reports the observed rounds and per-round trim sizes.
    pub fn explain(
        &self,
        plan_name: &str,
        phi: f64,
        analyze: bool,
    ) -> Result<ExplainReport, EngineError> {
        let plan = self.plan(plan_name)?;
        let mut report = ExplainReport {
            plan: plan.name.clone(),
            database: plan.database.clone(),
            generation: plan.generation,
            strategy: plan.strategy.label(),
            dichotomy: dichotomy_sentence(&plan.strategy),
            supports_exact: plan.strategy.supports_exact(),
            join_tree_atoms: plan.join_tree.num_nodes(),
            join_tree_height: plan.join_tree.height(),
            join_tree_binary: plan.join_tree.is_binary(),
            encoded_available: plan.encoded_instance.is_some(),
            total_answers: plan.total_answers,
            phi,
            target_rank: (plan.total_answers > 0)
                .then(|| qjoin_core::quantile::target_rank(phi, plan.total_answers)),
            analyze: None,
        };
        if analyze {
            let accuracy = if plan.strategy.supports_exact() {
                Accuracy::Exact
            } else {
                Accuracy::Approximate {
                    epsilon: EXPLAIN_ANALYZE_EPSILON,
                }
            };
            let trace = self.traced_uncached_solve(&plan, phi, accuracy)?;
            report.analyze = analyze_from_trace(&trace, accuracy);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dichotomy_sentences_name_their_class() {
        assert!(dichotomy_sentence(&PlanStrategy::MinMax).contains("Theorem 5.3"));
        assert!(dichotomy_sentence(&PlanStrategy::Lex).contains("LEX"));
        assert!(
            dichotomy_sentence(&PlanStrategy::SumSingleAtom { atom: 0 }).contains("Theorem 5.6")
        );
        assert!(
            dichotomy_sentence(&PlanStrategy::SumAdjacentPair { atoms: (1, 2) })
                .contains("1 and 2")
        );
        assert!(dichotomy_sentence(&PlanStrategy::SumApproximateOnly {
            witness: "independent set".to_string()
        })
        .contains("NP-hard"));
    }
}
