//! Prepared plans: a registration compiled once, served many times.
//!
//! Registering a `(query, ranking)` pair against a catalog database performs, **once**:
//!
//! 1. schema validation (the query's atoms match the database's relations),
//! 2. acyclicity via GYO, caching the resulting join tree,
//! 3. a Yannakakis counting pass, caching `|Q(D)|`,
//! 4. the §5 dichotomy (Theorem 5.6), selecting the trimming strategy.
//!
//! Every subsequent quantile request against the plan skips straight to the §3
//! recursion with the pre-selected trimmer. A plan remembers the database generation
//! it was compiled against; the engine recompiles it when the database is replaced.

use crate::error::EngineError;
use qjoin_core::dichotomy::{classify_partial_sum, SumClassification};
use qjoin_core::lossy_trim::LossySumTrimmer;
use qjoin_core::trim::{AdjacentSumTrimmer, LexTrimmer, MinMaxTrimmer, Trimmer};
use qjoin_core::CoreError;
use qjoin_data::{Database, EncodedDatabase};
use qjoin_exec::count::count_answers;
use qjoin_query::{acyclicity, EncodedInstance, Instance, JoinQuery, JoinTree};
use qjoin_ranking::{AggregateKind, Ranking};
use std::sync::Arc;
use std::time::Duration;

/// How a quantile request wants its answer: exact, or within a rank-error budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Accuracy {
    /// An exact φ-quantile (only served by exact plan strategies).
    Exact,
    /// A deterministic `(φ ± ε)`-approximation via ε-lossy SUM trimming (Theorem 6.2).
    Approximate {
        /// The per-trim loss budget ε ∈ (0, 1) (the practical "direct" budget).
        epsilon: f64,
    },
    /// A randomized `(φ ± ε)`-approximation with failure probability δ, served by
    /// uniform sampling over a direct-access structure (§3.1, Hoeffding bound).
    /// Works for **any** ranking kind; the seed makes answers reproducible. Refused
    /// ([`qjoin_core::CoreError::ApproxRefused`]) when the sample budget meets or
    /// exceeds the answer count — the regime where sampling cannot beat an exact
    /// solve.
    Bounded {
        /// The rank-error tolerance ε ∈ (0, 1).
        epsilon: f64,
        /// The failure probability δ ∈ (0, 1).
        delta: f64,
        /// RNG seed; equal seeds give pointwise-identical answers on every backend.
        seed: u64,
    },
}

impl Accuracy {
    /// A stable cache-key component: `None` for exact, the ε bit pattern for the
    /// deterministic approximation, and an (ε, δ, seed) mix with the top bit forced
    /// for the sampler — a valid deterministic ε is positive, so its sign bit is
    /// zero and the two routes can never collide at equal ε.
    pub(crate) fn key_bits(&self) -> Option<u64> {
        match self {
            Accuracy::Exact => None,
            Accuracy::Approximate { epsilon } => Some(epsilon.to_bits()),
            Accuracy::Bounded {
                epsilon,
                delta,
                seed,
            } => {
                let mut bits = epsilon.to_bits();
                bits = bits.rotate_left(21) ^ delta.to_bits();
                bits = bits.rotate_left(21) ^ seed;
                Some(bits | 1 << 63)
            }
        }
    }
}

/// The trimming strategy selected for a plan by the §5 dichotomy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanStrategy {
    /// MIN/MAX ranking: exact pivoting with the Algorithm 3 trimmer (Theorem 5.3).
    MinMax,
    /// LEX ranking: exact pivoting with the §5.2 trimmer.
    Lex,
    /// SUM with all weighted variables in one atom: exact linear-time filter trims.
    SumSingleAtom {
        /// Index of the covering atom.
        atom: usize,
    },
    /// SUM covered by two adjacent join-tree nodes: exact `O(n log n)` trims
    /// (Lemma 5.5).
    SumAdjacentPair {
        /// Indices of the two covering atoms.
        atoms: (usize, usize),
    },
    /// SUM on the intractable side of Theorem 5.6: only the ε-approximate path is
    /// available. The payload is the dichotomy's witness.
    SumApproximateOnly {
        /// Why exact solving is intractable (independent set / chordless path / ...).
        witness: String,
    },
}

impl PlanStrategy {
    /// True when the plan can serve exact quantile requests.
    pub fn supports_exact(&self) -> bool {
        !matches!(self, PlanStrategy::SumApproximateOnly { .. })
    }

    /// A short label for the CLI and stats output.
    pub fn label(&self) -> &'static str {
        match self {
            PlanStrategy::MinMax => "minmax",
            PlanStrategy::Lex => "lex",
            PlanStrategy::SumSingleAtom { .. } => "sum-single-atom",
            PlanStrategy::SumAdjacentPair { .. } => "sum-adjacent-pair",
            PlanStrategy::SumApproximateOnly { .. } => "sum-approximate-only",
        }
    }
}

/// A compiled registration, ready to serve quantile requests.
#[derive(Clone, Debug)]
pub struct PreparedPlan {
    /// The registration name (unique within an engine).
    pub name: String,
    /// A compact engine-assigned identifier (stable across recompilations).
    pub id: u64,
    /// The catalog database this plan reads.
    pub database: String,
    /// The database generation the plan was compiled against.
    pub generation: u64,
    /// The validated instance. Its database is the catalog's `Arc<Database>` for the
    /// plan's generation — shared, not copied, across all plans of that generation.
    pub instance: Instance,
    /// The instance over the catalog's dictionary-coded form of the same generation
    /// (shared across all plans of the generation). Exact solves run on it by
    /// default; `None` when the generation could not be encoded, in which case
    /// solves use the row path.
    pub encoded_instance: Option<EncodedInstance>,
    /// The plan's ranking function.
    pub ranking: Ranking,
    /// The cached GYO join tree.
    pub join_tree: JoinTree,
    /// `|Q(D)|` from the compile-time Yannakakis counting pass.
    pub total_answers: u128,
    /// The trimming strategy selected by the dichotomy.
    pub strategy: PlanStrategy,
    /// Wall-clock time spent compiling the plan.
    pub compile_time: Duration,
}

impl PreparedPlan {
    /// Compiles a registration: validates, derives the join tree, counts, classifies.
    /// The plan's instance shares `database` by handle — no relation data is copied —
    /// and its encoded instance shares the generation's dictionary-coded columns.
    #[allow(clippy::too_many_arguments)]
    pub fn compile(
        name: &str,
        id: u64,
        database_name: &str,
        generation: u64,
        query: JoinQuery,
        ranking: Ranking,
        database: &Arc<Database>,
        encoded: Option<&Arc<EncodedDatabase>>,
    ) -> Result<PreparedPlan, EngineError> {
        let start = std::time::Instant::now();
        let join_tree = acyclicity::gyo_join_tree(&query)
            .ok_or_else(|| EngineError::Core(CoreError::CyclicQuery(query.to_string())))?;
        let instance = Instance::new(query, Arc::clone(database))?;
        let encoded_instance = encoded.and_then(|db| {
            EncodedInstance::from_encoded_database(instance.query().clone(), db).ok()
        });
        let total_answers = count_answers(&instance)?;
        let strategy = match ranking.kind() {
            AggregateKind::Min | AggregateKind::Max => PlanStrategy::MinMax,
            AggregateKind::Lex => PlanStrategy::Lex,
            AggregateKind::Sum => {
                match classify_partial_sum(instance.query(), ranking.weighted_vars()) {
                    SumClassification::TractableSingleAtom { atom } => {
                        PlanStrategy::SumSingleAtom { atom }
                    }
                    SumClassification::TractableAdjacentPair { atoms } => {
                        PlanStrategy::SumAdjacentPair { atoms }
                    }
                    intractable => PlanStrategy::SumApproximateOnly {
                        witness: format!("{intractable:?}"),
                    },
                }
            }
        };
        Ok(PreparedPlan {
            name: name.to_string(),
            id,
            database: database_name.to_string(),
            generation,
            instance,
            encoded_instance,
            ranking,
            join_tree,
            total_answers,
            strategy,
            compile_time: start.elapsed(),
        })
    }

    /// Selects the trimmer serving a request of the given accuracy, or explains why
    /// the plan cannot serve it.
    pub fn trimmer_for(&self, accuracy: Accuracy) -> Result<Box<dyn Trimmer>, EngineError> {
        match accuracy {
            Accuracy::Exact => match &self.strategy {
                PlanStrategy::MinMax => Ok(Box::new(MinMaxTrimmer)),
                PlanStrategy::Lex => Ok(Box::new(LexTrimmer)),
                PlanStrategy::SumSingleAtom { .. } | PlanStrategy::SumAdjacentPair { .. } => {
                    Ok(Box::new(AdjacentSumTrimmer))
                }
                PlanStrategy::SumApproximateOnly { witness } => Err(EngineError::PlanCannotServe {
                    plan: self.name.clone(),
                    reason: format!(
                        "exact SUM solving is intractable ({witness}); request an \
                         approximate quantile with an ε budget instead"
                    ),
                }),
            },
            Accuracy::Approximate { epsilon } => {
                if self.ranking.kind() != AggregateKind::Sum {
                    return Err(EngineError::PlanCannotServe {
                        plan: self.name.clone(),
                        reason: format!(
                            "ε-approximation targets SUM rankings; this plan ranks by {:?} \
                             (exact solving is already quasilinear)",
                            self.ranking.kind()
                        ),
                    });
                }
                if !(epsilon > 0.0 && epsilon < 1.0) {
                    return Err(EngineError::Core(CoreError::InvalidEpsilon(epsilon)));
                }
                Ok(Box::new(LossySumTrimmer::new(epsilon)))
            }
            Accuracy::Bounded { .. } => Err(EngineError::PlanCannotServe {
                plan: self.name.clone(),
                reason: "randomized sampling requests are served by the sampler, not a \
                         trimmer"
                    .to_string(),
            }),
        }
    }

    /// Validates the parameters of a randomized sampling request (which has no
    /// trimmer to select — the sampler serves it directly).
    pub(crate) fn validate_bounded(&self, epsilon: f64, delta: f64) -> Result<(), EngineError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(EngineError::Core(CoreError::InvalidEpsilon(epsilon)));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(EngineError::PlanCannotServe {
                plan: self.name.clone(),
                reason: format!(
                    "sampling failure probability delta must be in (0, 1), got {delta}"
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_data::Relation;
    use qjoin_query::query::{path_query, triangle_query};
    use qjoin_query::variable::vars;

    fn three_path_db(n: i64) -> Database {
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        let mut r3 = Relation::new("R3", 2);
        for i in 0..n {
            r1.push(vec![((7 * i) % 43).into(), (i % 3).into()])
                .unwrap();
            r2.push(vec![(i % 3).into(), ((5 * i) % 37).into()])
                .unwrap();
            r3.push(vec![((5 * i) % 37).into(), ((3 * i) % 31).into()])
                .unwrap();
        }
        Database::from_relations([r1, r2, r3]).unwrap()
    }

    #[test]
    fn compile_caches_counts_and_selects_strategies() {
        let db = Arc::new(three_path_db(12));
        let cases: Vec<(Ranking, &str, bool)> = vec![
            (Ranking::max(path_query(3).variables()), "minmax", true),
            (Ranking::lex(vars(&["x1", "x4"])), "lex", true),
            (Ranking::sum(vars(&["x2"])), "sum-single-atom", true),
            (
                Ranking::sum(vars(&["x1", "x2", "x3"])),
                "sum-adjacent-pair",
                true,
            ),
            (
                Ranking::sum(path_query(3).variables()),
                "sum-approximate-only",
                false,
            ),
        ];
        for (i, (ranking, label, exact)) in cases.into_iter().enumerate() {
            let plan =
                PreparedPlan::compile("p", i as u64, "db", 1, path_query(3), ranking, &db, None)
                    .unwrap();
            assert_eq!(plan.strategy.label(), label);
            assert_eq!(plan.strategy.supports_exact(), exact);
            assert!(plan.total_answers > 0);
            assert_eq!(
                plan.total_answers,
                count_answers(&plan.instance).unwrap(),
                "cached count must match a fresh Yannakakis pass"
            );
        }
    }

    #[test]
    fn cyclic_queries_fail_to_compile() {
        let db = Arc::new(
            Database::from_relations([
                Relation::from_rows("R", &[&[1, 1]]).unwrap(),
                Relation::from_rows("S", &[&[1, 1]]).unwrap(),
                Relation::from_rows("T", &[&[1, 1]]).unwrap(),
            ])
            .unwrap(),
        );
        let ranking = Ranking::sum(triangle_query().variables());
        let err = PreparedPlan::compile("p", 0, "db", 1, triangle_query(), ranking, &db, None)
            .unwrap_err();
        assert!(matches!(err, EngineError::Core(CoreError::CyclicQuery(_))));
    }

    #[test]
    fn trimmer_selection_honors_accuracy() {
        let db = Arc::new(three_path_db(8));
        let intractable = PreparedPlan::compile(
            "p",
            0,
            "db",
            1,
            path_query(3),
            Ranking::sum(path_query(3).variables()),
            &db,
            None,
        )
        .unwrap();
        assert!(matches!(
            intractable.trimmer_for(Accuracy::Exact).err().unwrap(),
            EngineError::PlanCannotServe { .. }
        ));
        assert!(intractable
            .trimmer_for(Accuracy::Approximate { epsilon: 0.1 })
            .is_ok());
        assert!(matches!(
            intractable
                .trimmer_for(Accuracy::Approximate { epsilon: 1.5 })
                .err()
                .unwrap(),
            EngineError::Core(CoreError::InvalidEpsilon(_))
        ));

        let minmax = PreparedPlan::compile(
            "m",
            1,
            "db",
            1,
            path_query(3),
            Ranking::max(path_query(3).variables()),
            &db,
            None,
        )
        .unwrap();
        assert!(minmax.trimmer_for(Accuracy::Exact).is_ok());
        assert!(matches!(
            minmax
                .trimmer_for(Accuracy::Approximate { epsilon: 0.1 })
                .err()
                .unwrap(),
            EngineError::PlanCannotServe { .. }
        ));
    }

    #[test]
    fn accuracy_key_bits_distinguish_budgets() {
        assert_eq!(Accuracy::Exact.key_bits(), None);
        assert_ne!(
            Accuracy::Approximate { epsilon: 0.1 }.key_bits(),
            Accuracy::Approximate { epsilon: 0.2 }.key_bits()
        );
        let bounded = |epsilon, delta, seed| Accuracy::Bounded {
            epsilon,
            delta,
            seed,
        };
        // The sampler's key can never collide with a deterministic-ε key, and every
        // parameter participates in it.
        assert_ne!(
            bounded(0.1, 0.01, 7).key_bits(),
            Accuracy::Approximate { epsilon: 0.1 }.key_bits()
        );
        assert_ne!(
            bounded(0.1, 0.01, 7).key_bits(),
            bounded(0.2, 0.01, 7).key_bits()
        );
        assert_ne!(
            bounded(0.1, 0.01, 7).key_bits(),
            bounded(0.1, 0.05, 7).key_bits()
        );
        assert_ne!(
            bounded(0.1, 0.01, 7).key_bits(),
            bounded(0.1, 0.01, 8).key_bits()
        );
    }
}
