//! The engine's catalog: named databases with generation counters.
//!
//! Every database carries a monotonically increasing **generation** that is bumped on
//! replacement. Prepared plans record the generation they were compiled against and
//! result-cache keys embed it, so replacing a database atomically invalidates every
//! cached result derived from the old contents.

use crate::error::EngineError;
use qjoin_data::{Database, EncodedDatabase};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One catalog entry: a shared database and its current generation.
///
/// The database is held behind an [`Arc`]: every prepared plan compiled against this
/// generation shares the same handle, so registering N plans (or recompiling them on
/// replacement) allocates the tuple storage exactly once. The dictionary-coded form
/// is built once per generation too, so every plan's encoded solve path amortizes
/// the encoding pass across all queries of the generation.
#[derive(Clone, Debug)]
pub struct CatalogEntry {
    /// The database contents, shared with every plan compiled against this generation.
    pub database: Arc<Database>,
    /// The dictionary-coded form of the same generation (`None` only when the
    /// database cannot be encoded, e.g. it exceeds the encoded layer's row limits);
    /// plans then fall back to the row path.
    pub encoded: Option<Arc<EncodedDatabase>>,
    /// Bumped every time the database is replaced; generation 1 is the initial load.
    pub generation: u64,
}

/// A name → database map with replace-and-invalidate semantics.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    entries: BTreeMap<String, CatalogEntry>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a database under a fresh name. Fails if the name is taken. Accepts an
    /// owned [`Database`] or an already-shared `Arc<Database>`.
    pub fn create(
        &mut self,
        name: &str,
        database: impl Into<Arc<Database>>,
    ) -> Result<(), EngineError> {
        if self.entries.contains_key(name) {
            return Err(EngineError::DuplicateDatabase(name.to_string()));
        }
        let database: Arc<Database> = database.into();
        let encoded = EncodedDatabase::encode(&database).ok().map(Arc::new);
        self.entries.insert(
            name.to_string(),
            CatalogEntry {
                database,
                encoded,
                generation: 1,
            },
        );
        Ok(())
    }

    /// Replaces an existing database, bumping its generation. Returns the new
    /// generation. Fails if the name is unknown.
    pub fn replace(
        &mut self,
        name: &str,
        database: impl Into<Arc<Database>>,
    ) -> Result<u64, EngineError> {
        let database: Arc<Database> = database.into();
        let encoded = EncodedDatabase::encode(&database).ok().map(Arc::new);
        self.replace_with(name, database, encoded)
    }

    /// [`Catalog::replace`] with an already-encoded form (the engine encodes once
    /// per replacement and shares the result with every recompiled plan).
    pub fn replace_with(
        &mut self,
        name: &str,
        database: Arc<Database>,
        encoded: Option<Arc<EncodedDatabase>>,
    ) -> Result<u64, EngineError> {
        let entry = self
            .entries
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownDatabase(name.to_string()))?;
        entry.database = database;
        entry.encoded = encoded;
        entry.generation += 1;
        Ok(entry.generation)
    }

    /// Looks up a database by name.
    pub fn get(&self, name: &str) -> Result<&CatalogEntry, EngineError> {
        self.entries
            .get(name)
            .ok_or_else(|| EngineError::UnknownDatabase(name.to_string()))
    }

    /// True when a database with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Iterates over `(name, entry)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CatalogEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of catalogued databases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_data::Relation;

    fn db(rows: &[&[i64]]) -> Database {
        Database::from_relations([Relation::from_rows("R", rows).unwrap()]).unwrap()
    }

    #[test]
    fn create_then_replace_bumps_generation() {
        let mut catalog = Catalog::new();
        catalog.create("d", db(&[&[1, 2]])).unwrap();
        assert_eq!(catalog.get("d").unwrap().generation, 1);
        let generation = catalog.replace("d", db(&[&[3, 4]])).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(
            catalog
                .get("d")
                .unwrap()
                .database
                .relation("R")
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn duplicate_create_and_unknown_replace_fail() {
        let mut catalog = Catalog::new();
        catalog.create("d", db(&[&[1, 2]])).unwrap();
        assert!(matches!(
            catalog.create("d", db(&[&[1, 2]])).unwrap_err(),
            EngineError::DuplicateDatabase(_)
        ));
        assert!(matches!(
            catalog.replace("missing", db(&[&[1, 2]])).unwrap_err(),
            EngineError::UnknownDatabase(_)
        ));
        assert!(matches!(
            catalog.get("missing").unwrap_err(),
            EngineError::UnknownDatabase(_)
        ));
    }
}
