//! A small LRU result cache with hit/miss/eviction accounting, plus the sharded,
//! lock-per-shard wrapper the concurrent engine serves from.
//!
//! The engine keys entries by `(plan id, database generation, φ bits, accuracy)`, so
//! replacing a catalog database makes old entries unreachable immediately; the engine
//! additionally calls [`ShardedLru::invalidate`] to reclaim their memory eagerly.
//!
//! [`LruCache`] pairs a `HashMap` with a `BTreeMap` recency index keyed by a
//! monotonic tick, giving `O(log n)` touch and eviction without unsafe code or a
//! hand-rolled linked list. [`ShardedLru`] splits the capacity across independent
//! `Mutex<LruCache>` shards selected by the caller (the engine shards by plan id),
//! so concurrent lookups against different plans never contend on one lock.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Mutex;

/// Cache access statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries removed by explicit invalidation.
    pub invalidations: u64,
}

impl CacheStats {
    /// Accumulates another shard's counters into this one (used to aggregate
    /// per-shard statistics into the engine-wide view).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
    }
}

#[derive(Clone, Debug)]
struct Slot<V> {
    value: V,
    tick: u64,
}

/// A least-recently-used cache. Capacity 0 disables caching entirely (every lookup
/// misses, every insert is dropped).
#[derive(Clone, Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, Slot<V>>,
    recency: BTreeMap<u64, K>,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let tick = self.next_tick();
        match self.map.get_mut(key) {
            Some(slot) => {
                self.recency.remove(&slot.tick);
                slot.tick = tick;
                self.recency.insert(tick, key.clone());
                self.stats.hits += 1;
                Some(slot.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least recently used one when the
    /// capacity bound is hit.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let tick = self.next_tick();
        if let Some(slot) = self.map.get_mut(&key) {
            self.recency.remove(&slot.tick);
            slot.value = value;
            slot.tick = tick;
            self.recency.insert(tick, key);
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some((&oldest_tick, _)) = self.recency.iter().next() {
                if let Some(oldest_key) = self.recency.remove(&oldest_tick) {
                    self.map.remove(&oldest_key);
                    self.stats.evictions += 1;
                }
            }
        }
        self.map.insert(key.clone(), Slot { value, tick });
        self.recency.insert(tick, key);
    }

    /// Removes every entry matching the predicate (used when a catalog database is
    /// replaced), counting them as invalidations.
    pub fn invalidate(&mut self, mut predicate: impl FnMut(&K) -> bool) {
        let doomed: Vec<(K, u64)> = self
            .map
            .iter()
            .filter(|(k, _)| predicate(k))
            .map(|(k, slot)| (k.clone(), slot.tick))
            .collect();
        for (key, tick) in doomed {
            self.map.remove(&key);
            self.recency.remove(&tick);
            self.stats.invalidations += 1;
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the access statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// A sharded LRU cache: `shards` independent [`LruCache`]s, each behind its own
/// [`Mutex`], splitting the total capacity evenly. Callers route every `get`/`insert`
/// through a **selector** (the engine uses the plan id), so requests against
/// different selectors lock different shards and proceed fully in parallel; requests
/// against the *same* hot plan still serialize only on that plan's shard.
///
/// Total capacity 0 disables caching entirely, exactly like [`LruCache`].
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache of `shards` shards (at least 1) holding `capacity` entries in total.
    /// Each shard gets `ceil(capacity / shards)` slots, so the usable total rounds up
    /// to a multiple of the shard count.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, selector: u64) -> &Mutex<LruCache<K, V>> {
        &self.shards[(selector % self.shards.len() as u64) as usize]
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Looks up a key in the selector's shard, refreshing its recency on a hit.
    pub fn get(&self, selector: u64, key: &K) -> Option<V> {
        self.shard(selector).lock().unwrap().get(key)
    }

    /// Inserts (or refreshes) an entry in the selector's shard.
    pub fn insert(&self, selector: u64, key: K, value: V) {
        self.shard(selector).lock().unwrap().insert(key, value);
    }

    /// Removes every entry matching the predicate, across all shards.
    pub fn invalidate(&self, predicate: impl Fn(&K) -> bool) {
        for shard in &self.shards {
            shard.lock().unwrap().invalidate(&predicate);
        }
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().unwrap().is_empty())
    }

    /// Total configured capacity (sum over shards).
    pub fn capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().capacity())
            .sum()
    }

    /// Live entries per shard, in shard order (the occupancy view behind the
    /// `stats` dump's shard line and the `qjoin_cache_shard_entries` gauge).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().len())
            .collect()
    }

    /// Access statistics aggregated over all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.merge(&shard.lock().unwrap().stats());
        }
        total
    }

    /// Per-shard access statistics, in shard order.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().stats())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_refresh_recency() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.get(&"a"), Some(1)); // "a" is now the most recent
        cache.insert("c", 3); // evicts "b"
        assert_eq!(cache.get(&"a"), Some(1));
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"c"), Some(3));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_in_place_without_eviction() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("a", 10);
        cache.insert("b", 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&"a"), Some(10));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn invalidate_removes_matching_entries() {
        let mut cache = LruCache::new(8);
        for i in 0..6 {
            cache.insert((i % 2, i), i * 10);
        }
        cache.invalidate(|&(plan, _)| plan == 0);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().invalidations, 3);
        assert_eq!(cache.get(&(1, 1)), Some(10));
        assert_eq!(cache.get(&(0, 0)), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert("a", 1);
        assert_eq!(cache.get(&"a"), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn sharded_routes_by_selector_and_aggregates() {
        let cache: ShardedLru<(u64, u32), i64> = ShardedLru::new(8, 4);
        assert_eq!(cache.shards(), 4);
        assert_eq!(cache.capacity(), 8); // ceil(8/4) = 2 per shard, 4 shards
        for plan in 0..4u64 {
            cache.insert(plan, (plan, 0), plan as i64 * 10);
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.get(0, &(0, 0)), Some(0));
        assert_eq!(cache.get(3, &(3, 0)), Some(30));
        assert_eq!(cache.get(1, &(1, 9)), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        // Selector 1's shard saw the one miss; shard 0 and 3 each saw one hit.
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), 2);
        assert_eq!(per_shard[1].misses, 1);
    }

    #[test]
    fn sharded_eviction_is_per_shard() {
        // 1 slot per shard: two entries with the same selector evict each other,
        // while entries on other shards survive.
        let cache: ShardedLru<(u64, u32), i64> = ShardedLru::new(2, 2);
        cache.insert(0, (0, 1), 1);
        cache.insert(1, (1, 1), 2);
        cache.insert(0, (0, 2), 3); // evicts (0, 1) from shard 0
        assert_eq!(cache.get(0, &(0, 1)), None);
        assert_eq!(cache.get(0, &(0, 2)), Some(3));
        assert_eq!(cache.get(1, &(1, 1)), Some(2));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn shard_lens_report_per_shard_occupancy() {
        let cache: ShardedLru<(u64, u32), i64> = ShardedLru::new(16, 4);
        cache.insert(0, (0, 0), 1);
        cache.insert(0, (0, 1), 2);
        cache.insert(2, (2, 0), 3);
        assert_eq!(cache.shard_lens(), vec![2, 0, 1, 0]);
        assert_eq!(cache.shard_lens().iter().sum::<usize>(), cache.len());
    }

    #[test]
    fn sharded_invalidate_spans_all_shards() {
        let cache: ShardedLru<(u64, u32), i64> = ShardedLru::new(16, 4);
        for plan in 0..8u64 {
            cache.insert(plan, (plan, 0), 1);
        }
        cache.invalidate(|&(plan, _)| plan % 2 == 0);
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().invalidations, 4);
    }

    #[test]
    fn sharded_zero_capacity_disables_caching() {
        let cache: ShardedLru<u64, i64> = ShardedLru::new(0, 4);
        cache.insert(0, 0, 1);
        assert_eq!(cache.get(0, &0), None);
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 0);
    }
}
