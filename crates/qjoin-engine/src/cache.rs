//! A small LRU result cache with hit/miss/eviction accounting.
//!
//! The engine keys entries by `(plan id, database generation, φ bits, accuracy)`, so
//! replacing a catalog database makes old entries unreachable immediately; the engine
//! additionally calls [`LruCache::invalidate`] to reclaim their memory eagerly.
//!
//! The implementation pairs a `HashMap` with a `BTreeMap` recency index keyed by a
//! monotonic tick, giving `O(log n)` touch and eviction without unsafe code or a
//! hand-rolled linked list.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Cache access statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries removed by explicit invalidation.
    pub invalidations: u64,
}

#[derive(Clone, Debug)]
struct Slot<V> {
    value: V,
    tick: u64,
}

/// A least-recently-used cache. Capacity 0 disables caching entirely (every lookup
/// misses, every insert is dropped).
#[derive(Clone, Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, Slot<V>>,
    recency: BTreeMap<u64, K>,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let tick = self.next_tick();
        match self.map.get_mut(key) {
            Some(slot) => {
                self.recency.remove(&slot.tick);
                slot.tick = tick;
                self.recency.insert(tick, key.clone());
                self.stats.hits += 1;
                Some(slot.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least recently used one when the
    /// capacity bound is hit.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let tick = self.next_tick();
        if let Some(slot) = self.map.get_mut(&key) {
            self.recency.remove(&slot.tick);
            slot.value = value;
            slot.tick = tick;
            self.recency.insert(tick, key);
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some((&oldest_tick, _)) = self.recency.iter().next() {
                if let Some(oldest_key) = self.recency.remove(&oldest_tick) {
                    self.map.remove(&oldest_key);
                    self.stats.evictions += 1;
                }
            }
        }
        self.map.insert(key.clone(), Slot { value, tick });
        self.recency.insert(tick, key);
    }

    /// Removes every entry matching the predicate (used when a catalog database is
    /// replaced), counting them as invalidations.
    pub fn invalidate(&mut self, mut predicate: impl FnMut(&K) -> bool) {
        let doomed: Vec<(K, u64)> = self
            .map
            .iter()
            .filter(|(k, _)| predicate(k))
            .map(|(k, slot)| (k.clone(), slot.tick))
            .collect();
        for (key, tick) in doomed {
            self.map.remove(&key);
            self.recency.remove(&tick);
            self.stats.invalidations += 1;
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the access statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_refresh_recency() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.get(&"a"), Some(1)); // "a" is now the most recent
        cache.insert("c", 3); // evicts "b"
        assert_eq!(cache.get(&"a"), Some(1));
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"c"), Some(3));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_in_place_without_eviction() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("a", 10);
        cache.insert("b", 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&"a"), Some(10));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn invalidate_removes_matching_entries() {
        let mut cache = LruCache::new(8);
        for i in 0..6 {
            cache.insert((i % 2, i), i * 10);
        }
        cache.invalidate(|&(plan, _)| plan == 0);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().invalidations, 3);
        assert_eq!(cache.get(&(1, 1)), Some(10));
        assert_eq!(cache.get(&(0, 0)), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert("a", 1);
        assert_eq!(cache.get(&"a"), None);
        assert!(cache.is_empty());
    }
}
