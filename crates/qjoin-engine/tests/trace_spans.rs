//! Property-style well-formedness tests for recorded solve traces.
//!
//! Over a randomized grid of workloads (rows × seed × φ, driven by a
//! deterministic xorshift so failures reproduce), every trace the flight
//! recorder captures must be a well-formed tree:
//!
//! * exactly one root span (the `request`), every other span's parent exists;
//! * children are nested inside their parent's `[start, end]` interval, so a
//!   child's duration never exceeds its parent's;
//! * the number of `trim-round` spans equals the solve's reported pivoting
//!   iteration count, and the `rounds` arg on the `solve` span agrees;
//! * round indices on `trim-round` spans are exactly `0..rounds`, each carrying
//!   its candidate count and three-way split sizes.

use qjoin_engine::{Engine, EngineAnswer, EngineConfig};
use qjoin_query::query::social_network_query;
use qjoin_query::variable::vars;
use qjoin_ranking::Ranking;
use qjoin_telemetry::{ArgValue, Trace};
use qjoin_workload::social::SocialConfig;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Deterministic xorshift64* so the "random" workloads reproduce exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A φ strictly inside (0, 1) on a 1/1000 grid.
    fn phi(&mut self) -> f64 {
        (self.next() % 999 + 1) as f64 / 1000.0
    }
}

fn engine_with_plan(rows: usize, seed: u64) -> Engine {
    // No result cache: every request is a cold solve and records a full trace.
    let engine = Engine::with_config(EngineConfig {
        cache_capacity: 0,
        flight_recorder_capacity: 8,
        ..Default::default()
    });
    let config = SocialConfig {
        rows_per_relation: rows,
        seed,
        ..Default::default()
    };
    engine
        .create_database("social", config.generate().into_parts().1)
        .unwrap();
    engine
        .register(
            "likes",
            "social",
            social_network_query(),
            Ranking::sum(vars(&["l2", "l3"])),
        )
        .unwrap();
    engine
}

/// Asserts the structural invariants every recorded trace must satisfy and
/// returns the number of `trim-round` spans.
fn assert_well_formed(trace: &Trace) -> usize {
    assert!(!trace.spans.is_empty(), "trace {:?} has no spans", trace.id);

    // Exactly one root, and it is the request span.
    let roots: Vec<_> = trace.spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "one root expected in {:?}", trace.spans);
    let root = roots[0];
    assert_eq!(root.name, "request", "{root:?}");

    for span in &trace.spans {
        let Some(parent_id) = span.parent else {
            continue;
        };
        let parent = trace
            .span(parent_id)
            .unwrap_or_else(|| panic!("span {:?} has dangling parent {parent_id:?}", span.id));
        assert!(
            span.start_ns >= parent.start_ns,
            "child {:?} ({}) starts at {} before parent {:?} ({}) at {}",
            span.id,
            span.name,
            span.start_ns,
            parent.id,
            parent.name,
            parent.start_ns
        );
        assert!(
            span.end_ns() <= parent.end_ns(),
            "child {:?} ({}) ends at {} after parent {:?} ({}) at {}",
            span.id,
            span.name,
            span.end_ns(),
            parent.id,
            parent.name,
            parent.end_ns()
        );
        assert!(
            span.dur_ns <= parent.dur_ns,
            "child {:?} outlasts its parent: {} > {}",
            span.id,
            span.dur_ns,
            parent.dur_ns
        );
    }

    // Spans come out of `finish()` sorted by start time.
    for pair in trace.spans.windows(2) {
        assert!(pair[0].start_ns <= pair[1].start_ns, "{:?}", trace.spans);
    }

    trace.spans_named("trim-round").count()
}

/// Pulls the most recent trace and checks it against the answer that made it.
fn check_cold_trace(engine: &Engine, answer: &EngineAnswer) -> usize {
    assert!(!answer.from_cache, "cold request expected");
    let trace = engine.recorder().last(1).pop().expect("trace recorded");
    let trims = assert_well_formed(&trace);

    // The cache was consulted (and missed) before the solve ran.
    let lookup = trace
        .spans_named("cache-lookup")
        .next()
        .expect("cache-lookup span");
    assert!(
        matches!(lookup.arg("hit"), Some(ArgValue::Bool(false))),
        "{lookup:?}"
    );

    // One solve span whose `rounds` arg matches both the trim-round span count
    // and the iteration count the answer itself reports.
    let solve = trace.spans_named("solve").next().expect("solve span");
    let rounds = solve
        .arg("rounds")
        .and_then(|v| v.as_u64())
        .expect("rounds arg") as usize;
    assert_eq!(rounds, trims, "rounds arg vs trim-round spans");
    assert_eq!(
        rounds, answer.result.iterations,
        "rounds arg vs reported iterations"
    );

    // Phase spans parent to the solve span and carry their round indices.
    let mut seen_rounds = BTreeSet::new();
    for span in trace.spans_named("trim-round") {
        assert_eq!(span.parent, Some(solve.id), "{span:?}");
        let round = span.arg("round").and_then(|v| v.as_u64()).expect("round");
        assert!(span.arg("candidates").is_some(), "{span:?}");
        assert!(span.arg("n_lt").is_some(), "{span:?}");
        assert!(span.arg("n_eq").is_some(), "{span:?}");
        assert!(span.arg("n_gt").is_some(), "{span:?}");
        seen_rounds.insert(round);
    }
    let expected: BTreeSet<u64> = (0..rounds as u64).collect();
    assert_eq!(seen_rounds, expected, "round indices must be 0..rounds");

    // Every solve prepares its backend and materializes its answer.
    assert!(trace.spans_named("prepare").count() >= 1);
    assert!(trace.spans_named("materialize").count() >= 1);
    trims
}

#[test]
fn cold_quantile_traces_are_well_formed_trees() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    let mut total_trims = 0usize;
    for case in 0..6 {
        let rows = 40 + (rng.next() % 80) as usize;
        let seed = rng.next() % 1000;
        let engine = engine_with_plan(rows, seed);
        for _ in 0..4 {
            let phi = rng.phi();
            let answer = engine
                .quantile("likes", phi)
                .unwrap_or_else(|e| panic!("case {case} rows {rows} seed {seed}: {e}"));
            total_trims += check_cold_trace(&engine, &answer);
        }
    }
    // The grid is big enough that at least some solves genuinely pivoted;
    // otherwise the trim-round assertions above were all vacuous.
    assert!(total_trims > 0, "no workload ever pivoted — grid too small");
}

#[test]
fn cold_batch_traces_count_shared_rounds_once() {
    let engine = engine_with_plan(100, 77);
    let answers = engine
        .quantile_batch("likes", &[0.2, 0.45, 0.7, 0.95])
        .unwrap();
    assert_eq!(answers.len(), 4);

    let trace = engine.recorder().last(1).pop().expect("batch trace");
    let trims = assert_well_formed(&trace);
    let solve = trace.spans_named("solve").next().expect("solve span");
    let rounds = solve.arg("rounds").and_then(|v| v.as_u64()).unwrap() as usize;
    // The batch recursion shares rounds across φ targets: the trace shows the
    // rounds actually run, which one batched solve performs exactly once each.
    assert_eq!(rounds, trims);
    // Shared rounds can't exceed (and usually undercut) the per-φ sum.
    let per_phi_sum: usize = answers.iter().map(|a| a.result.iterations).sum();
    assert!(rounds <= per_phi_sum, "{rounds} > {per_phi_sum}");
}

#[test]
fn warm_requests_trace_the_cache_hit_and_skip_the_solve() {
    let engine = Engine::with_config(EngineConfig {
        flight_recorder_capacity: 8,
        ..Default::default()
    });
    let config = SocialConfig {
        rows_per_relation: 60,
        seed: 5,
        ..Default::default()
    };
    engine
        .create_database("social", config.generate().into_parts().1)
        .unwrap();
    engine
        .register(
            "likes",
            "social",
            social_network_query(),
            Ranking::sum(vars(&["l2", "l3"])),
        )
        .unwrap();

    engine.quantile("likes", 0.5).unwrap();
    let warm = engine.quantile("likes", 0.5).unwrap();
    assert!(warm.from_cache);

    let trace = engine.recorder().last(1).pop().expect("warm trace");
    assert_well_formed(&trace);
    let lookup = trace
        .spans_named("cache-lookup")
        .next()
        .expect("cache-lookup span");
    assert!(
        matches!(lookup.arg("hit"), Some(ArgValue::Bool(true))),
        "{lookup:?}"
    );
    assert_eq!(trace.spans_named("solve").count(), 0, "{:?}", trace.spans);
    assert_eq!(trace.spans_named("trim-round").count(), 0);
}

#[test]
fn disabled_recorder_records_nothing_and_costs_no_spans() {
    let engine = Engine::with_config(EngineConfig {
        flight_recorder_capacity: 0,
        ..Default::default()
    });
    let config = SocialConfig {
        rows_per_relation: 60,
        seed: 9,
        ..Default::default()
    };
    engine
        .create_database("social", config.generate().into_parts().1)
        .unwrap();
    engine
        .register(
            "likes",
            "social",
            social_network_query(),
            Ranking::sum(vars(&["l2", "l3"])),
        )
        .unwrap();
    let answer = engine.quantile("likes", 0.5).unwrap();
    assert!(!answer.from_cache);
    assert!(!engine.recorder().is_enabled());
    assert!(engine.recorder().last(1).is_empty());

    // Concurrent hammering with tracing on: one shared engine, every thread's
    // traces land in the ring and the ring never overflows its capacity.
    let engine = Arc::new(engine_with_plan(80, 13));
    std::thread::scope(|scope| {
        for t in 0..8 {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                for i in 0..5 {
                    let phi = (t * 5 + i + 1) as f64 / 48.0;
                    engine.quantile("likes", phi).unwrap();
                    assert!(engine.recorder().len() <= engine.recorder().capacity());
                }
            });
        }
    });
    for trace in engine.recorder().last(8) {
        assert_well_formed(&trace);
    }
}
