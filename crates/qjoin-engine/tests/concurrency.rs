//! Concurrent-correctness tests for the thread-safe engine.
//!
//! The contract under test (see the engine module docs):
//!
//! * `Engine: Send + Sync`, and all serving methods take `&self`;
//! * N threads hammering `quantile`/`quantile_batch` against one shared engine get
//!   answers **identical** to a serial run;
//! * interleaved `replace_database` is atomic: every concurrently-served answer
//!   belongs entirely to one database generation (no mixed-generation results), and
//!   the generation recorded on the answer identifies which database produced it;
//! * cache accounting stays exact under concurrency (no lost updates).

use qjoin_engine::{Engine, EngineConfig};
use qjoin_query::query::social_network_query;
use qjoin_query::variable::vars;
use qjoin_ranking::Ranking;
use qjoin_workload::social::SocialConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// `static_assertions`-style compile-time checks: if the engine (or anything it
// embeds) stops being thread-safe, this file fails to build.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<Arc<Engine>>();
    assert_send_sync::<qjoin_engine::EngineStats>();
    assert_send_sync::<qjoin_engine::CacheStats>();
};

fn social_database(rows: usize, seed: u64) -> qjoin_data::Database {
    let config = SocialConfig {
        rows_per_relation: rows,
        seed,
        ..Default::default()
    };
    config.generate().into_parts().1
}

fn engine_with_plan(rows: usize, seed: u64) -> Arc<Engine> {
    let engine = Engine::new();
    engine
        .create_database("social", social_database(rows, seed))
        .unwrap();
    engine
        .register(
            "likes",
            "social",
            social_network_query(),
            Ranking::sum(vars(&["l2", "l3"])),
        )
        .unwrap();
    Arc::new(engine)
}

/// The φ grid shared by the hammer tests.
fn phi_grid() -> Vec<f64> {
    (1..=9).map(|i| i as f64 / 10.0).collect()
}

#[test]
fn n_threads_hammering_quantile_match_serial_answers() {
    let phis = phi_grid();
    // Serial ground truth from an identically-built engine.
    let serial_engine = engine_with_plan(90, 21);
    let serial: Vec<(u128, String)> = phis
        .iter()
        .map(|&phi| {
            let a = serial_engine.quantile("likes", phi).unwrap();
            (a.result.target_index, a.result.weight.to_string())
        })
        .collect();

    let engine = engine_with_plan(90, 21);
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let phis = phis.clone();
            let serial = serial.clone();
            std::thread::spawn(move || {
                // Different threads sweep the grid in different orders, so cache
                // fills race with cold solves in every interleaving.
                for round in 0..4 {
                    for i in 0..phis.len() {
                        let i = (i + t * 3 + round) % phis.len();
                        let a = engine.quantile("likes", phis[i]).unwrap();
                        assert_eq!(
                            (a.result.target_index, a.result.weight.to_string()),
                            serial[i],
                            "thread {t} round {round} phi {}",
                            phis[i]
                        );
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Cache accounting is exact: one lookup per request, and every miss is either
    // solved directly (a leader's shared batch, counted per φ) or served from
    // another request's in-flight batch (a coalesced waiter). Without coalescing
    // `solved == misses`; with it, waiters replace duplicate solves, so `solved`
    // can only shrink, never exceed the miss count.
    let stats = engine.stats();
    assert_eq!(stats.counters.quantile_requests, 8 * 4 * 9);
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        stats.counters.quantile_requests
    );
    assert!(stats.counters.solved <= stats.cache.misses);
    assert!(
        stats.counters.solved + stats.counters.coalesced_waiters >= stats.cache.misses,
        "every miss is a solve or a coalesced wait: {stats:?}"
    );
    // Every φ was solved at least once, and never evicted at default capacity.
    assert!(stats.counters.solved >= 9);
    assert_eq!(stats.cache_entries, 9);
}

#[test]
fn concurrent_batches_match_serial_answers() {
    let phis = phi_grid();
    let serial_engine = engine_with_plan(80, 33);
    let serial: Vec<(u128, String)> = serial_engine
        .quantile_batch("likes", &phis)
        .unwrap()
        .iter()
        .map(|a| (a.result.target_index, a.result.weight.to_string()))
        .collect();

    let engine = engine_with_plan(80, 33);
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let phis = phis.clone();
            let serial = serial.clone();
            std::thread::spawn(move || {
                // Each thread batches a rotated window of the grid.
                for round in 0..3 {
                    let start = (t + round) % 3;
                    let window: Vec<f64> = phis[start..start + 6].to_vec();
                    let answers = engine.quantile_batch("likes", &window).unwrap();
                    for (k, answer) in answers.iter().enumerate() {
                        let i = start + k;
                        assert_eq!(
                            (answer.result.target_index, answer.result.weight.to_string()),
                            serial[i],
                            "thread {t} round {round} phi {}",
                            phis[i]
                        );
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let stats = engine.stats();
    assert_eq!(stats.counters.batch_requests, 6 * 3);
    assert_eq!(stats.counters.quantile_requests, 6 * 3 * 6);
}

#[test]
fn interleaved_replace_never_mixes_generations() {
    // Two distinguishable databases: different seeds shift both the answer count
    // and the quantile weights.
    let rows = 70;
    let (seed_a, seed_b) = (5, 606);
    let expected = |seed: u64| -> (u128, String) {
        let engine = engine_with_plan(rows, seed);
        let a = engine.quantile("likes", 0.5).unwrap();
        (a.result.total_answers, a.result.weight.to_string())
    };
    let expect_a = expected(seed_a);
    let expect_b = expected(seed_b);
    assert_ne!(expect_a, expect_b, "seeds must produce distinct answers");

    let engine = engine_with_plan(rows, seed_a);
    let stop = Arc::new(AtomicBool::new(false));

    // Writer: flip the database back and forth. Generation g holds seed A when g
    // is odd (gen 1 = the initial A), seed B when even.
    let writer = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for flip in 0..10 {
                let seed = if flip % 2 == 0 { seed_b } else { seed_a };
                engine
                    .replace_database("social", social_database(rows, seed))
                    .unwrap();
            }
            stop.store(true, Ordering::SeqCst);
        })
    };

    // Readers: every answer must be *exactly* the A answer or the B answer, and
    // must agree with the generation stamped on it — a result mixing two
    // generations (old tuples, new count, or vice versa) fails both checks.
    let readers: Vec<_> = (0..6)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let expect_a = expect_a.clone();
            let expect_b = expect_b.clone();
            std::thread::spawn(move || {
                let mut checked = 0u64;
                while !stop.load(Ordering::SeqCst) || checked == 0 {
                    let answer = engine.quantile("likes", 0.5).unwrap();
                    let got = (
                        answer.result.total_answers,
                        answer.result.weight.to_string(),
                    );
                    let want = if answer.generation % 2 == 1 {
                        &expect_a
                    } else {
                        &expect_b
                    };
                    assert_eq!(
                        &got, want,
                        "generation {} must serve its own database's answer",
                        answer.generation
                    );
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    writer.join().unwrap();
    let total_checked: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total_checked > 0);
    // 10 flips recompiled the single dependent plan 10 times (plus 2 initial
    // registrations on the ground-truth engines, not counted here).
    assert_eq!(engine.stats().counters.plan_compilations, 11);
    assert_eq!(engine.catalog().get("social").unwrap().generation, 11);
}

#[test]
fn concurrent_identical_cold_requests_coalesce_into_one_solve() {
    // k threads request the same cold φ at the same time. Scheduling can let some
    // thread finish before another starts (it then hits the cache instead of the
    // gate), so retry with a fresh φ until a round demonstrably coalesced; the
    // correctness assertions hold on every attempt regardless.
    let k = 8;
    let serial_engine = engine_with_plan(150, 77);
    let engine = engine_with_plan(150, 77);
    let mut coalesced = false;
    for attempt in 0..20 {
        let phi = 0.05 + attempt as f64 * 0.017; // fresh (cold) φ per attempt
        let expected = {
            let a = serial_engine.quantile("likes", phi).unwrap();
            (a.result.target_index, a.result.weight.to_string())
        };
        let barrier = Arc::new(std::sync::Barrier::new(k));
        let before = engine.stats().counters;
        let threads: Vec<_> = (0..k)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let a = engine.quantile("likes", phi).unwrap();
                    (a.result.target_index, a.result.weight.to_string())
                })
            })
            .collect();
        for t in threads {
            // Every concurrent answer is bit-identical to the serial solve.
            assert_eq!(t.join().unwrap(), expected, "phi {phi}");
        }
        let after = engine.stats().counters;
        // Identical targets can never multiply solves: the φ is solved at most
        // once per attempt no matter how many threads raced (the rest were cache
        // hits or coalesced waiters).
        assert_eq!(after.solved - before.solved, 1, "phi {phi}");
        if after.coalesced_batches > before.coalesced_batches {
            assert!(after.coalesced_waiters > before.coalesced_waiters);
            coalesced = true;
            break;
        }
    }
    assert!(
        coalesced,
        "20 barrier-started attempts of 8 identical cold requests never coalesced"
    );
}

#[test]
fn racing_replace_cannot_resurrect_a_dead_generation_cache_entry() {
    // Regression: a cold solve that grabbed the old generation's plan handle used
    // to insert its result into the LRU *after* `replace_database` had swept that
    // generation's entries, leaving a dead-generation result resident until
    // eviction. The insert is now guarded on the current catalog generation, so in
    // every interleaving the cache holds no old-generation entry once the replace
    // has completed and the racing solve has finished.
    let rows = 120;
    for attempt in 0..6u64 {
        let engine = engine_with_plan(rows, 40 + attempt);
        let phi = 0.3 + attempt as f64 * 0.1;
        let solver = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || engine.quantile("likes", phi).unwrap())
        };
        // Race the replacement against the in-flight cold solve.
        engine
            .replace_database("social", social_database(rows, 999 + attempt))
            .unwrap();
        let raced = solver.join().unwrap();
        if raced.generation == 1 {
            // The solve ran against the dead generation. Whichever side finished
            // first, its result must not be resident now: either the sweep removed
            // it, or the guarded insert refused it.
            let stats = engine.stats();
            assert_eq!(
                stats.cache_entries, 0,
                "attempt {attempt}: dead-generation entry resurrected: {stats:?}"
            );
            // And a fresh request must actually solve against the new generation.
            let fresh = engine.quantile("likes", phi).unwrap();
            assert!(!fresh.from_cache);
            assert_eq!(fresh.generation, 2);
        } else {
            // The solver lost the race entirely and served the new generation —
            // a legitimately cacheable result.
            assert_eq!(raced.generation, 2);
        }
    }
}

#[test]
fn single_shard_cache_still_correct_under_concurrency() {
    // Degenerate configuration: one shard means every request contends on one
    // cache lock; answers must still be exact.
    let engine = Engine::with_config(EngineConfig {
        cache_capacity: 4, // tiny: forces constant eviction churn
        cache_shards: 1,
        ..Default::default()
    });
    engine
        .create_database("social", social_database(60, 9))
        .unwrap();
    engine
        .register(
            "likes",
            "social",
            social_network_query(),
            Ranking::sum(vars(&["l2", "l3"])),
        )
        .unwrap();
    let engine = Arc::new(engine);
    let phis = phi_grid();
    let serial: Vec<String> = phis
        .iter()
        .map(|&phi| {
            engine
                .quantile("likes", phi)
                .unwrap()
                .result
                .weight
                .to_string()
        })
        .collect();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let phis = phis.clone();
            let serial = serial.clone();
            std::thread::spawn(move || {
                for round in 0..3 {
                    for (i, &phi) in phis.iter().enumerate() {
                        let a = engine.quantile("likes", phi).unwrap();
                        assert_eq!(a.result.weight.to_string(), serial[i], "t{t} r{round}");
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let stats = engine.stats();
    assert_eq!(stats.cache_shards, 1);
    assert!(stats.cache_entries <= 4);
    assert!(
        stats.cache.evictions > 0,
        "capacity 4 must churn: {stats:?}"
    );
}
