//! Concurrency tests for the span-tracing flight recorder.
//!
//! The contract under test (see the `span` module docs):
//!
//! * the recorder NEVER retains more than `capacity` traces, no matter how many
//!   threads push concurrently — eviction is oldest-first, pushes are lock-free
//!   on the shared path (one `fetch_add` plus a per-slot pointer swap);
//! * `last(n)` is newest-first by trace id and never fabricates entries;
//! * trace ids are unique across threads (the atomic counter never hands the
//!   same id out twice);
//! * capacity 0 disables retention entirely while id allocation keeps working.

use qjoin_telemetry::{FlightRecorder, TraceBuilder, TraceId};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builds a minimal but well-formed trace: one root span with one child.
fn push_trace(recorder: &FlightRecorder) -> TraceId {
    let id = recorder.next_trace_id();
    let builder = TraceBuilder::new(id);
    let root = builder.next_span_id();
    let start = builder.epoch();
    builder.record_new(Some(root), "child", start, Duration::from_nanos(10), vec![]);
    builder.record(root, None, "root", start, Duration::from_nanos(50), vec![]);
    recorder.push(builder.finish());
    id
}

#[test]
fn eight_thread_hammer_never_exceeds_capacity() {
    const CAPACITY: usize = 7;
    const THREADS: usize = 8;
    const PUSHES_PER_THREAD: usize = 250;

    let recorder = Arc::new(FlightRecorder::new(CAPACITY));
    let ids: Vec<HashSet<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let recorder = Arc::clone(&recorder);
                scope.spawn(move || {
                    let mut mine = HashSet::new();
                    for _ in 0..PUSHES_PER_THREAD {
                        mine.insert(push_trace(&recorder).0);
                        // The bound must hold mid-hammer, not just at the end.
                        let len = recorder.len();
                        assert!(len <= CAPACITY, "recorder grew to {len} > {CAPACITY}");
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Ids are globally unique across all threads.
    let mut all_ids = HashSet::new();
    for set in &ids {
        assert_eq!(set.len(), PUSHES_PER_THREAD);
        for &id in set {
            assert!(all_ids.insert(id), "trace id {id:#x} handed out twice");
        }
    }

    // After the dust settles: exactly `capacity` survivors, newest first.
    assert_eq!(recorder.len(), CAPACITY);
    let last = recorder.last(CAPACITY + 100);
    assert_eq!(
        last.len(),
        CAPACITY,
        "last(n) never exceeds what is retained"
    );
    for pair in last.windows(2) {
        assert!(
            pair[0].id > pair[1].id,
            "last() must be newest-first: {:?} before {:?}",
            pair[0].id,
            pair[1].id
        );
    }
    // Every survivor is a trace some thread actually pushed, and each is
    // retrievable by id.
    for trace in &last {
        assert!(
            all_ids.contains(&trace.id.0),
            "phantom trace {:?}",
            trace.id
        );
        let fetched = recorder.get(trace.id).expect("retained trace must resolve");
        assert_eq!(fetched.id, trace.id);
        assert_eq!(fetched.spans.len(), 2);
    }
    // last(1) is the single newest retained trace.
    assert_eq!(recorder.last(1)[0].id, last[0].id);
}

#[test]
fn capacity_zero_disables_retention_but_not_id_allocation() {
    let recorder = FlightRecorder::new(0);
    assert!(!recorder.is_enabled());
    assert_eq!(recorder.capacity(), 0);

    let first = push_trace(&recorder);
    let second = push_trace(&recorder);
    // Ids still advance (slowlog correlation keeps working)…
    assert!(second.0 > first.0);
    // …but nothing is ever retained.
    assert!(recorder.is_empty());
    assert!(recorder.last(10).is_empty());
    assert!(recorder.get(first).is_none());
}

#[test]
fn eviction_is_oldest_first_under_serial_pushes() {
    let recorder = FlightRecorder::new(3);
    let ids: Vec<TraceId> = (0..5).map(|_| push_trace(&recorder)).collect();
    // The two oldest are gone, the three newest remain in newest-first order.
    assert!(recorder.get(ids[0]).is_none());
    assert!(recorder.get(ids[1]).is_none());
    let survivors: Vec<TraceId> = recorder.last(3).iter().map(|t| t.id).collect();
    assert_eq!(survivors, vec![ids[4], ids[3], ids[2]]);
}

#[test]
fn retained_traces_are_immutable_snapshots() {
    // A reader holding an `Arc<Trace>` keeps a consistent snapshot even while
    // writers evict it from the ring.
    let recorder = Arc::new(FlightRecorder::new(1));
    let first = push_trace(&recorder);
    let held = recorder.get(first).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while recorder.get(first).is_some() && Instant::now() < deadline {
        push_trace(&recorder);
    }
    assert!(recorder.get(first).is_none(), "eviction never happened");
    assert_eq!(held.id, first, "held snapshot survives eviction");
    assert_eq!(held.spans.len(), 2);
    assert_eq!(held.root().unwrap().name, "root");
}
