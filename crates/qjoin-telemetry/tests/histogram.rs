//! Integration tests for the log-bucketed histogram: the merge/quantile error
//! bound as a property over random streams, and lock-free recording under
//! contention.
//!
//! The vendored proptest has no collection strategies, so streams are generated
//! from integer **seeds**: each case draws a seed (plus shape parameters) and
//! expands it deterministically with the vendored `rand`.

use proptest::prelude::*;
use qjoin_telemetry::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Expands a seed into a value stream spanning several octaves, so buckets of
/// very different widths all get exercised.
fn stream(seed: u64, len: usize, max_exp: u32) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let exp = rng.random_range(0..=max_exp);
            rng.random_range(0..=(1u64 << exp))
        })
        .collect()
}

fn record_all(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The true (inclusive-rank) quantile of a sorted stream, matching the
/// histogram's rank convention: rank = clamp(ceil(q·n), 1, n).
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merged quantiles bound the union stream's true quantiles within one
    /// bucket's relative error: with 16 sub-buckets per octave, the estimate is
    /// the true value at the same rank rounded up to its bucket's upper bound,
    /// so `true ≤ estimate ≤ true + true/16 + 1`.
    #[test]
    fn merge_quantiles_bound_the_union_stream(
        seed_a in 0u64..10_000,
        seed_b in 10_000u64..20_000,
        len_a in 1usize..400,
        len_b in 1usize..400,
        max_exp in 0u32..40,
    ) {
        let a = stream(seed_a, len_a, max_exp);
        let b = stream(seed_b, len_b, max_exp);
        let mut merged = record_all(&a).snapshot();
        merged.merge(&record_all(&b).snapshot());

        let mut union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        union.sort_unstable();
        prop_assert_eq!(merged.count(), union.len() as u64);
        prop_assert_eq!(merged.min(), union[0]);
        prop_assert_eq!(merged.max(), *union.last().unwrap());

        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let truth = true_quantile(&union, q);
            let est = merged.quantile(q);
            prop_assert!(est >= truth, "q={q}: est {est} < true {truth}");
            prop_assert!(
                est <= truth + truth / 16 + 1,
                "q={q}: est {est} exceeds true {truth} by more than one bucket"
            );
        }
    }

    /// Merging is exactly bucket-wise: merge(a, b) sees the same buckets as one
    /// histogram fed the concatenated stream.
    #[test]
    fn merge_equals_recording_the_concatenation(
        seed in 0u64..10_000,
        split in 1usize..199,
        max_exp in 0u32..40,
    ) {
        let all = stream(seed, 200, max_exp);
        let (a, b) = all.split_at(split);
        let mut merged = record_all(a).snapshot();
        merged.merge(&record_all(b).snapshot());
        let direct = record_all(&all).snapshot();
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert_eq!(merged.sum(), direct.sum());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(merged.quantile(q), direct.quantile(q));
        }
    }
}

/// Concurrent `record` calls lose no counts: the bucket array and the
/// sum/min/max registers are all atomic, so 8 threads hammering one histogram
/// must account for every single value.
#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let h = Arc::new(Histogram::new());
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                let mut sum = 0u64;
                for i in 0..PER_THREAD {
                    // A mix of deterministic ramp (covers many octaves) and
                    // random values (collides buckets across threads).
                    let v = if i % 2 == 0 {
                        t * PER_THREAD + i
                    } else {
                        rng.random_range(0..1 << 30)
                    };
                    h.record(v);
                    sum += v;
                }
                sum
            })
        })
        .collect();
    let expected_sum: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();

    let snapshot = h.snapshot();
    assert_eq!(snapshot.count(), THREADS * PER_THREAD);
    assert_eq!(snapshot.sum(), expected_sum);
    // Thread 0's ramp starts at 0, so the global minimum is exactly 0.
    assert_eq!(snapshot.min(), 0);
    assert!(snapshot.max() >= (THREADS - 1) * PER_THREAD);
}
