//! A named-metric registry of counters, gauges, and histograms.
//!
//! Metrics are keyed by `(name, sorted label pairs)`. Registration is
//! get-or-create under a short-lived write lock; the returned handles are
//! `Arc`-backed atomics, so the hot path (bumping a counter, recording a
//! latency) never takes the registry lock again.
//!
//! Two registration modes exist on purpose:
//!
//! * **Live** metrics ([`Registry::counter`], [`Registry::gauge`],
//!   [`Registry::histogram`]) are updated by the subsystem that owns them as
//!   events happen.
//! * **Published** values ([`Registry::publish_counter`],
//!   [`Registry::publish_gauge`]) are *overwritten at scrape time* from an
//!   external source of truth (e.g. the engine's existing atomic counters).
//!   Every exporter — human dump, JSON, Prometheus — then reads the same
//!   registry, so the surfaces cannot diverge.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A monotonically increasing `u64` metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for publishing an externally tracked count.
    pub fn store(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time `f64` metric, stored as bits in an atomic.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// `(name, sorted label pairs)` — the registry key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// The shared registry. Cheap to clone behind an [`Arc`]; see the module docs
/// for the live-vs-published registration modes.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<MetricKey, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create the counter `name{labels}`.
    ///
    /// # Panics
    /// Panics if the same key was previously registered as a different metric
    /// type — that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.write().expect("registry lock poisoned");
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get-or-create the gauge `name{labels}`.
    ///
    /// # Panics
    /// Panics on a metric-type conflict, as for [`Registry::counter`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.write().expect("registry lock poisoned");
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get-or-create the histogram `name{labels}`.
    ///
    /// # Panics
    /// Panics on a metric-type conflict, as for [`Registry::counter`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.write().expect("registry lock poisoned");
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Publishes an externally tracked count: get-or-create, then overwrite.
    /// Call at scrape time so every exposition surface reads the same value.
    pub fn publish_counter(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.counter(name, labels).store(value);
    }

    /// Publishes an externally tracked gauge value: get-or-create, then
    /// overwrite.
    pub fn publish_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauge(name, labels).set(value);
    }

    /// A point-in-time copy of every registered metric, sorted by key.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.read().expect("registry lock poisoned");
        let samples = metrics
            .iter()
            .map(|(key, metric)| MetricSample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }
}

/// One metric's value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A monotone count.
    Counter(u64),
    /// A point-in-time value.
    Gauge(f64),
    /// A full histogram snapshot (nanosecond-valued by convention).
    Histogram(HistogramSnapshot),
}

/// One `(name, labels, value)` triple inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// The metric name (e.g. `qjoin_requests_total`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: SampleValue,
}

/// A point-in-time copy of a whole [`Registry`], ready for rendering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All samples, sorted by `(name, labels)`.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// The counter value for `name` with exactly the given labels, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)? {
            SampleValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value for `name` with exactly the given labels, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.find(name, labels)? {
            SampleValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram snapshot for `name` with exactly the given labels, if
    /// present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match self.find(name, labels)? {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SampleValue> {
        let mut wanted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        wanted.sort();
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == wanted)
            .map(|s| &s.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_metric() {
        let registry = Registry::new();
        let a = registry.counter("hits", &[]);
        let b = registry.counter("hits", &[]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(registry.snapshot().counter("hits", &[]), Some(3));
    }

    #[test]
    fn labels_distinguish_metrics_and_order_does_not() {
        let registry = Registry::new();
        registry
            .counter("reqs", &[("verb", "quantile"), ("plan", "likes")])
            .inc();
        registry.counter("reqs", &[("verb", "batch")]).add(5);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counter("reqs", &[("plan", "likes"), ("verb", "quantile")]),
            Some(1)
        );
        assert_eq!(snapshot.counter("reqs", &[("verb", "batch")]), Some(5));
        assert_eq!(snapshot.counter("reqs", &[]), None);
    }

    #[test]
    fn publish_overwrites_at_scrape_time() {
        let registry = Registry::new();
        registry.publish_counter("solved", &[], 7);
        registry.publish_counter("solved", &[], 9);
        registry.publish_gauge("entries", &[], 3.0);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("solved", &[]), Some(9));
        assert_eq!(snapshot.gauge("entries", &[]), Some(3.0));
    }

    #[test]
    fn histograms_round_trip_through_snapshots() {
        let registry = Registry::new();
        let h = registry.histogram("lat", &[("kind", "warm")]);
        h.record(500);
        h.record(1500);
        let snapshot = registry.snapshot();
        let hist = snapshot.histogram("lat", &[("kind", "warm")]).unwrap();
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.min(), 500);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflicts_panic() {
        let registry = Registry::new();
        registry.counter("x", &[]);
        registry.gauge("x", &[]);
    }
}
