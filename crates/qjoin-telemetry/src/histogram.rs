//! A lock-free log-bucketed latency histogram.
//!
//! Values (nanoseconds by convention) are assigned to buckets by their binary
//! exponent plus `SUB_BITS` linear sub-bucket bits — the HdrHistogram / DDSketch
//! bucketing scheme. A bucket's width is at most `1/16` of its lower bound, so any
//! quantile extracted from the buckets is within **6.25 % relative error** of the
//! true stream quantile (values below 16 are bucketed exactly). The bucket array
//! is `AtomicU64`s bumped with relaxed ordering: concurrent [`Histogram::record`]
//! calls never lose counts and never contend on a lock.
//!
//! Histograms are **mergeable**: [`HistogramSnapshot::merge`] adds bucket arrays
//! pointwise, and because the value → bucket mapping is monotone, quantiles of a
//! merged snapshot carry the same one-bucket error bound with respect to the
//! concatenated underlying streams — the property the test-suite checks by
//! property testing.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-bucket bits per binary octave: 2⁴ = 16 sub-buckets, bounding each
/// bucket's width to 1/16 of its lower bound.
const SUB_BITS: u32 = 4;

/// Sub-buckets per octave.
const SUB_COUNT: usize = 1 << SUB_BITS;

/// Total buckets: indices `0..16` hold the values `0..16` exactly; every later
/// group of 16 covers one binary octave up to `u64::MAX`.
const BUCKET_COUNT: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// Maps a value to its bucket index (monotone non-decreasing in the value).
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let group = (exp - SUB_BITS + 1) as usize;
    let sub = ((value >> (exp - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
    group * SUB_COUNT + sub
}

/// The inclusive `[low, high]` value range of a bucket.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_COUNT {
        return (index as u64, index as u64);
    }
    let group = index / SUB_COUNT;
    let sub = (index % SUB_COUNT) as u64;
    let width = 1u64 << (group - 1);
    let low = (SUB_COUNT as u64 + sub) << (group - 1);
    (low, low + (width - 1))
}

/// A lock-free log-bucketed histogram (see the module docs). Recording is a few
/// relaxed atomic operations; snapshots are taken without stopping writers.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKET_COUNT]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKET_COUNT]> = buckets
            .into_boxed_slice()
            .try_into()
            .expect("bucket count is fixed");
        Histogram {
            buckets,
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds by convention). Lock-free and wait-free on
    /// every platform with native 64-bit atomics; concurrent calls lose nothing.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, duration: std::time::Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the bucket counts. Concurrent writers may land
    /// between bucket reads, so a snapshot is a consistent *history prefix per
    /// bucket* rather than one global instant — the standard trade for lock-free
    /// recording. The snapshot's `count` is derived from the bucket array itself,
    /// so quantile extraction is always self-consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable, mergeable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity of [`HistogramSnapshot::merge`]).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (wrapping only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (nearest-rank) of the recorded stream, reported as the
    /// **upper bound** of the bucket holding that rank: for a true stream value
    /// `v` the estimate `e` satisfies `v ≤ e ≤ v + v/16` (exact below 16).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(index).1.min(self.max);
            }
        }
        self.max
    }

    /// Merges another snapshot into this one: bucket-wise addition, so the result
    /// is exactly the snapshot of the concatenated streams (same error bound).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Cumulative per-octave counts for Prometheus-style `_bucket{le=...}` lines:
    /// `(inclusive upper bound in nanoseconds, cumulative count)` per octave group,
    /// up to the last non-empty group. At most 61 entries, typically a handful.
    pub fn cumulative_octaves(&self) -> Vec<(u64, u64)> {
        let last_nonzero = match self.buckets.iter().rposition(|&n| n > 0) {
            Some(index) => index,
            None => return Vec::new(),
        };
        let groups = last_nonzero / SUB_COUNT + 1;
        let mut out = Vec::with_capacity(groups);
        let mut cumulative = 0u64;
        for group in 0..groups {
            let slice = &self.buckets[group * SUB_COUNT..(group + 1) * SUB_COUNT];
            cumulative += slice.iter().sum::<u64>();
            let le = bucket_bounds(group * SUB_COUNT + SUB_COUNT - 1).1;
            out.push((le, cumulative));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_contains_its_value() {
        let mut previous = 0usize;
        let samples: Vec<u64> = (0..2000)
            .map(|i| i * 7)
            .chain((0..64).map(|e| (1u64 << e).saturating_sub(1)))
            .chain((0..64).map(|e| 1u64 << e))
            .chain([u64::MAX])
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for v in sorted {
            let index = bucket_index(v);
            assert!(index >= previous, "bucket index must be monotone at {v}");
            previous = index;
            let (low, high) = bucket_bounds(index);
            assert!(low <= v && v <= high, "value {v} outside [{low}, {high}]");
            assert!(index < BUCKET_COUNT);
            // Bucket width ≤ 1/16 of the lower bound (exact below 16).
            if low >= SUB_COUNT as u64 {
                assert!(high - low <= low / SUB_COUNT as u64);
            } else {
                assert_eq!(low, high);
            }
        }
    }

    #[test]
    fn buckets_tile_the_value_space_contiguously() {
        for index in 1..BUCKET_COUNT {
            let (low, _) = bucket_bounds(index);
            let (_, previous_high) = bucket_bounds(index - 1);
            assert_eq!(low, previous_high + 1, "gap before bucket {index}");
        }
        assert_eq!(bucket_bounds(BUCKET_COUNT - 1).1, u64::MAX);
    }

    #[test]
    fn quantiles_carry_the_one_bucket_error_bound() {
        let histogram = Histogram::new();
        let values: Vec<u64> = (1..=10_000).map(|i| i * 13).collect();
        for &v in &values {
            histogram.record(v);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count(), values.len() as u64);
        assert_eq!(snapshot.min(), 13);
        assert_eq!(snapshot.max(), 130_000);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let estimate = snapshot.quantile(q);
            assert!(estimate >= truth, "q={q}: {estimate} < {truth}");
            assert!(
                estimate <= truth + truth / 16 + 1,
                "q={q}: {estimate} too far above {truth}"
            );
        }
    }

    #[test]
    fn empty_and_single_value_edge_cases() {
        let histogram = Histogram::new();
        let empty = histogram.snapshot();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.min(), 0);
        assert_eq!(empty.mean(), 0.0);
        assert!(empty.cumulative_octaves().is_empty());

        histogram.record(42);
        let one = histogram.snapshot();
        assert_eq!(one.count(), 1);
        assert_eq!(one.quantile(0.0), 42);
        assert_eq!(one.quantile(1.0), 42);
        assert_eq!(one.min(), 42);
        assert_eq!(one.max(), 42);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 100, 10_000] {
            a.record(v);
        }
        for v in [2u64, 100, 1_000_000] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 6);
        assert_eq!(merged.sum(), 1 + 100 + 10_000 + 2 + 100 + 1_000_000);
        assert_eq!(merged.min(), 1);
        assert_eq!(merged.max(), 1_000_000);

        let both = Histogram::new();
        for v in [1u64, 100, 10_000, 2, 100, 1_000_000] {
            both.record(v);
        }
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn cumulative_octaves_are_monotone_and_end_at_count() {
        let histogram = Histogram::new();
        for v in [3u64, 17, 900, 40_000, 40_001] {
            histogram.record(v);
        }
        let octaves = histogram.snapshot().cumulative_octaves();
        assert!(!octaves.is_empty());
        for pair in octaves.windows(2) {
            assert!(pair[0].0 < pair[1].0, "le bounds must increase");
            assert!(
                pair[0].1 <= pair[1].1,
                "cumulative counts must not decrease"
            );
        }
        assert_eq!(octaves.last().unwrap().1, 5);
    }
}
