//! Rendering a [`MetricsSnapshot`] for machines.
//!
//! Two formats, same data:
//!
//! * [`render_prometheus`] — text exposition lines (`key{label="..."} value`),
//!   one series per line, with `# TYPE` headers and cumulative
//!   `_bucket{le="..."}` / `_sum` / `_count` lines per histogram.
//! * [`render_json`] — one **single-line** JSON object mapping each series name
//!   to its value (number for counters/gauges, object with
//!   count/sum/min/max/mean/p50/p90/p99 for histograms). Single-line on purpose:
//!   the wire protocol flattens embedded newlines, so the whole dump must fit
//!   one payload line.
//!
//! Per the crate-level unit convention, histogram samples are nanoseconds and
//! both renderers convert them to **seconds**.

use crate::histogram::HistogramSnapshot;
use crate::registry::{MetricsSnapshot, SampleValue};

const NANOS_PER_SEC: f64 = 1e9;

/// Renders Prometheus-style text exposition lines, `# TYPE`-annotated, one
/// series per line, histogram nanoseconds converted to seconds.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_typed: Option<&str> = None;
    for sample in &snapshot.samples {
        let kind = match &sample.value {
            SampleValue::Counter(_) => "counter",
            SampleValue::Gauge(_) => "gauge",
            SampleValue::Histogram(_) => "histogram",
        };
        if last_typed != Some(sample.name.as_str()) {
            out.push_str(&format!("# TYPE {} {kind}\n", sample.name));
            last_typed = Some(sample.name.as_str());
        }
        match &sample.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {v}\n",
                    sample.name,
                    label_block(&sample.labels, None)
                ));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    sample.name,
                    label_block(&sample.labels, None),
                    fmt_f64(*v)
                ));
            }
            SampleValue::Histogram(h) => {
                for (le_nanos, cumulative) in h.cumulative_octaves() {
                    let le = fmt_f64(le_nanos as f64 / NANOS_PER_SEC);
                    out.push_str(&format!(
                        "{}_bucket{} {cumulative}\n",
                        sample.name,
                        label_block(&sample.labels, Some(&le))
                    ));
                }
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    sample.name,
                    label_block(&sample.labels, Some("+Inf")),
                    h.count()
                ));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    sample.name,
                    label_block(&sample.labels, None),
                    fmt_f64(h.sum() as f64 / NANOS_PER_SEC)
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    sample.name,
                    label_block(&sample.labels, None),
                    h.count()
                ));
            }
        }
    }
    out
}

/// Renders the snapshot as **one single-line JSON object**: each series name
/// (labels folded into the key, Prometheus-style) maps to a number for
/// counters/gauges or to a quantile-summary object for histograms.
pub fn render_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for sample in &snapshot.samples {
        if !first {
            out.push(',');
        }
        first = false;
        let series = format!("{}{}", sample.name, label_block(&sample.labels, None));
        out.push_str(&format!("\"{}\":", json_escape(&series)));
        match &sample.value {
            SampleValue::Counter(v) => out.push_str(&v.to_string()),
            SampleValue::Gauge(v) => out.push_str(&json_f64(*v)),
            SampleValue::Histogram(h) => out.push_str(&histogram_json(h)),
        }
    }
    out.push('}');
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let secs = |nanos: u64| json_f64(nanos as f64 / NANOS_PER_SEC);
    format!(
        "{{\"count\":{},\"sum_seconds\":{},\"min_seconds\":{},\"max_seconds\":{},\
         \"mean_seconds\":{},\"p50_seconds\":{},\"p90_seconds\":{},\"p99_seconds\":{}}}",
        h.count(),
        secs(h.sum()),
        secs(h.min()),
        secs(h.max()),
        json_f64(h.mean() / NANOS_PER_SEC),
        secs(h.quantile(0.50)),
        secs(h.quantile(0.90)),
        secs(h.quantile(0.99)),
    )
}

/// `{k="v",...}` with optional trailing `le`, or the empty string when there is
/// nothing to emit.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn prom_escape(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// JSON string escaping for the characters our metric names and labels can
/// plausibly carry (quotes, backslashes, control characters).
fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/Infinity literals — render them as `null`.
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        fmt_f64(value)
    } else {
        "null".to_string()
    }
}

/// Shortest round-trippable float formatting; integral values keep a `.0` so
/// gauges stay visibly floating-point in the Prometheus dump.
fn fmt_f64(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{value:.1}")
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let registry = Registry::new();
        registry.counter("qjoin_requests_total", &[]).add(42);
        registry
            .gauge("qjoin_cache_entries", &[("shard", "0")])
            .set(3.0);
        let h = registry.histogram("qjoin_solve_seconds", &[("plan", "likes")]);
        h.record(1_000_000); // 1 ms
        h.record(2_000_000);
        registry
    }

    #[test]
    fn prometheus_lines_have_expected_shapes() {
        let text = render_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE qjoin_requests_total counter\n"));
        assert!(text.contains("qjoin_requests_total 42\n"));
        assert!(text.contains("qjoin_cache_entries{shard=\"0\"} 3.0\n"));
        assert!(text.contains("# TYPE qjoin_solve_seconds histogram\n"));
        assert!(text.contains("qjoin_solve_seconds_bucket{plan=\"likes\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("qjoin_solve_seconds_count{plan=\"likes\"} 2\n"));
        // Every non-comment line is `series value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(!series.is_empty());
            assert!(value == "+Inf" || value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_in_seconds() {
        let registry = Registry::new();
        let h = registry.histogram("lat_seconds", &[]);
        h.record(1_000); // 1 µs
        h.record(1_000_000_000); // 1 s
        let text = render_prometheus(&registry.snapshot());
        let bucket_counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(bucket_counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*bucket_counts.last().unwrap(), 2);
        assert!(text.contains("lat_seconds_sum 1.000001\n"));
    }

    #[test]
    fn json_is_one_line_with_expected_keys() {
        let json = render_json(&sample_registry().snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains('\n'), "must stay on one wire line");
        assert!(json.contains("\"qjoin_requests_total\":42"));
        assert!(json.contains("\"qjoin_cache_entries{shard=\\\"0\\\"}\":3.0"));
        assert!(json.contains("\"qjoin_solve_seconds{plan=\\\"likes\\\"}\":{\"count\":2,"));
        assert!(json.contains("\"p50_seconds\":"));
    }

    #[test]
    fn escaping_handles_quotes_and_non_finite() {
        let registry = Registry::new();
        registry.counter("c", &[("q", "a\"b\\c")]).inc();
        registry.gauge("g", &[]).set(f64::NAN);
        let text = render_prometheus(&registry.snapshot());
        assert!(text.contains("c{q=\"a\\\"b\\\\c\"} 1\n"));
        let json = render_json(&registry.snapshot());
        assert!(json.contains("\"g\":null"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snapshot = Registry::new().snapshot();
        assert_eq!(render_prometheus(&snapshot), "");
        assert_eq!(render_json(&snapshot), "{}");
    }
}
