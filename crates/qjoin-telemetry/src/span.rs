//! Per-request span tracing: trace/span identifiers, a shareable
//! [`TraceBuilder`], a bounded [`FlightRecorder`] ring of completed traces, and
//! exporters (Chrome trace-event JSON, compact wire JSON, human-readable tree).
//!
//! The histogram/registry layer answers "is p99 bad?"; this module answers
//! "why was *this* request slow?". A trace is a tree of timed spans — one root
//! per request, with children for queue-wait, execute, cache-lookup,
//! coalesce-wait, the solve, and each solve phase (round-indexed, with trim
//! sizes). Completed traces land in a flight recorder ring that the `trace`
//! wire verbs read back.
//!
//! ## Identity and time
//!
//! [`TraceId`]s come from a per-recorder atomic counter — no wall clock, no
//! randomness — and render as lowercase hex. Span timestamps are nanosecond
//! offsets from the trace's *epoch* (the [`Instant`] the builder was created),
//! so a trace is self-contained and never depends on system time.
//!
//! ## Ambient context
//!
//! [`with_trace_context`] scopes a [`TraceContext`] (builder + parent span) as
//! the calling thread's current trace, mirroring `qjoin_par::with_pool`: the
//! server installs a context around request execution and the engine attaches
//! its spans to whatever context is current, so no handle is plumbed through
//! the session layer.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Identifiers
// ---------------------------------------------------------------------------

/// Identifies one recorded trace (one request). Allocated from a per-recorder
/// atomic counter, starting at 1; renders as lowercase hex.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

impl TraceId {
    /// Parses the hex form produced by [`Display`](fmt::Display).
    pub fn parse(s: &str) -> Option<TraceId> {
        u64::from_str_radix(s.trim(), 16).ok().map(TraceId)
    }
}

/// Identifies one span within a trace. Allocated from the owning builder's
/// atomic counter, starting at 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

// ---------------------------------------------------------------------------
// Span records
// ---------------------------------------------------------------------------

/// One argument value attached to a span. Numeric variants render unquoted in
/// the JSON exporters so consumers get real numbers, not strings.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// An unsigned count (round index, candidate count, trim size, …).
    U64(u64),
    /// A floating-point value (φ, a ratio, …).
    F64(f64),
    /// A short string tag (plan name, backend, command).
    Str(String),
    /// A boolean flag (cache hit, follower, …).
    Bool(bool),
}

impl ArgValue {
    /// The value as JSON (numbers/booleans bare, strings escaped and quoted).
    fn to_json(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::F64(v) if v.is_finite() => format!("{v}"),
            ArgValue::F64(_) => "null".to_string(),
            ArgValue::Str(s) => format!("\"{}\"", json_escape_str(s)),
            ArgValue::Bool(b) => b.to_string(),
        }
    }

    /// The value as it appears in the human tree rendering.
    fn to_display(&self) -> String {
        match self {
            ArgValue::Str(s) => format!("{s:?}"),
            other => other.to_json(),
        }
    }

    /// The value as a `u64`, when it is one (used by explain-analyze to pull
    /// round indices and trim sizes back out of recorded spans).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ArgValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `&str`, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ArgValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One completed span: a named, timed interval within a trace, optionally
/// parented to an enclosing span, with structured arguments.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// This span's id, unique within its trace.
    pub id: SpanId,
    /// The enclosing span, or `None` for the trace root.
    pub parent: Option<SpanId>,
    /// The span name (`request`, `queue-wait`, `solve`, `trim-round`, …).
    /// Static so recording a span on the warm request path never allocates
    /// for the name.
    pub name: &'static str,
    /// Start offset from the trace epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Structured arguments (`round`, `n_lt`, `plan`, …).
    pub args: Vec<(&'static str, ArgValue)>,
}

impl SpanRecord {
    /// End offset from the trace epoch, in nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    /// Looks up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// A completed trace: an id plus its spans, sorted by start offset.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The trace id.
    pub id: TraceId,
    /// All recorded spans, sorted by `(start_ns, id)`.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// The first root span (no parent), if any.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Total trace duration: the maximum span end offset, in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.end_ns()).max().unwrap_or(0)
    }

    /// Looks up a span by id.
    pub fn span(&self, id: SpanId) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// All spans with the given name, in start order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }
}

// ---------------------------------------------------------------------------
// TraceBuilder
// ---------------------------------------------------------------------------

struct BuilderInner {
    id: TraceId,
    epoch: Instant,
    next_span: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A shareable, thread-safe accumulator for one trace's spans.
///
/// Clones share the same underlying trace. Span ids can be allocated eagerly
/// (so children can reference a parent that is recorded later, when it
/// finishes), and spans are recorded after-the-fact from a start [`Instant`]
/// plus a [`Duration`]. [`TraceBuilder::finish`] drains the spans into an
/// immutable [`Trace`].
#[derive(Clone)]
pub struct TraceBuilder {
    inner: Arc<BuilderInner>,
}

impl TraceBuilder {
    /// Creates a builder whose epoch is *now*.
    pub fn new(id: TraceId) -> Self {
        Self::with_epoch(id, Instant::now())
    }

    /// Creates a builder with an explicit epoch (e.g. the instant a request
    /// was enqueued, so queue-wait starts at offset 0).
    pub fn with_epoch(id: TraceId, epoch: Instant) -> Self {
        TraceBuilder {
            inner: Arc::new(BuilderInner {
                id,
                epoch,
                next_span: AtomicU64::new(1),
                spans: Mutex::new(Vec::with_capacity(16)),
            }),
        }
    }

    /// This trace's id.
    pub fn id(&self) -> TraceId {
        self.inner.id
    }

    /// The instant all span offsets are measured from.
    pub fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    /// Allocates the next span id without recording anything, so a parent's id
    /// can be handed to children before the parent span itself is recorded.
    pub fn next_span_id(&self) -> SpanId {
        SpanId(self.inner.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// Records a span under a previously allocated id.
    pub fn record(
        &self,
        id: SpanId,
        parent: Option<SpanId>,
        name: &'static str,
        start: Instant,
        dur: Duration,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let start_ns = start
            .saturating_duration_since(self.inner.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let record = SpanRecord {
            id,
            parent,
            name,
            start_ns,
            dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
            args,
        };
        self.inner
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record);
    }

    /// Allocates an id and records a span under it in one step.
    pub fn record_new(
        &self,
        parent: Option<SpanId>,
        name: &'static str,
        start: Instant,
        dur: Duration,
        args: Vec<(&'static str, ArgValue)>,
    ) -> SpanId {
        let id = self.next_span_id();
        self.record(id, parent, name, start, dur, args);
        id
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.inner
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Whether no spans have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the recorded spans into an immutable [`Trace`], sorted by
    /// `(start_ns, id)`. Further records on surviving clones accumulate into a
    /// fresh (normally discarded) span list.
    pub fn finish(&self) -> Trace {
        let mut spans =
            std::mem::take(&mut *self.inner.spans.lock().unwrap_or_else(|e| e.into_inner()));
        spans.sort_by_key(|s| (s.start_ns, s.id));
        Trace {
            id: self.inner.id,
            spans,
        }
    }
}

// ---------------------------------------------------------------------------
// Ambient trace context (thread-local, mirroring qjoin_par::with_pool)
// ---------------------------------------------------------------------------

/// The ambient tracing state a layer installs for its callees: the builder to
/// record into, and the span the callee's spans should parent to.
#[derive(Clone)]
pub struct TraceContext {
    /// The trace being built.
    pub builder: TraceBuilder,
    /// The span new child spans should attach to.
    pub parent: SpanId,
}

thread_local! {
    static CURRENT_TRACE: RefCell<Option<TraceContext>> = const { RefCell::new(None) };
}

/// Runs `f` with `ctx` installed as the calling thread's current trace
/// context, restoring the previous context afterwards (panic-safe).
pub fn with_trace_context<R>(ctx: TraceContext, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<TraceContext>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_TRACE.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let previous = CURRENT_TRACE.with(|c| c.borrow_mut().replace(ctx));
    let _restore = Restore(previous);
    f()
}

/// The calling thread's current trace context, if one is installed.
pub fn current_trace_context() -> Option<TraceContext> {
    CURRENT_TRACE.with(|c| c.borrow().clone())
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

/// A bounded ring of the most recently completed traces.
///
/// Pushes claim a slot with a single `fetch_add` on the cursor (the ring index
/// is the counter modulo capacity) and swap the slot's `Arc<Trace>` under that
/// slot's own mutex — held only for the pointer swap, never across trace
/// construction — so concurrent pushes from many worker threads never contend
/// on a shared lock. Newest traces evict oldest; capacity 0 disables recording
/// entirely (pushes are dropped, [`FlightRecorder::is_enabled`] is `false`),
/// which is the zero-overhead configuration benchmarks compare against.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<Arc<Trace>>>>,
    cursor: AtomicU64,
    next_trace: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("len", &self.len())
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` traces.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            next_trace: AtomicU64::new(1),
        }
    }

    /// Maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Whether recording is enabled (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Allocates the next trace id. Ids are handed out even when recording is
    /// disabled so slowlog entries can still be correlated if the recorder is
    /// later enabled.
    pub fn next_trace_id(&self) -> TraceId {
        TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    /// Stores a completed trace, evicting the oldest when full. A no-op at
    /// capacity 0.
    pub fn push(&self, trace: Trace) {
        if self.slots.is_empty() {
            return;
        }
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        *self.slots[slot].lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(trace));
    }

    /// The `n` most recent traces, newest first.
    pub fn last(&self, n: usize) -> Vec<Arc<Trace>> {
        let mut all = self.snapshot();
        all.sort_by_key(|t| std::cmp::Reverse(t.id));
        all.truncate(n);
        all
    }

    /// Looks up a retained trace by id.
    pub fn get(&self, id: TraceId) -> Option<Arc<Trace>> {
        self.snapshot().into_iter().find(|t| t.id == id)
    }

    /// Number of currently retained traces (≤ capacity).
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether no traces are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn snapshot(&self) -> Vec<Arc<Trace>> {
        self.slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

fn json_escape_str(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1_000.0)
}

/// Renders a trace as Chrome trace-event JSON — a one-line array of complete
/// (`"ph":"X"`) events with microsecond timestamps — loadable in
/// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev). All events share
/// one pid/tid; the viewers nest them by time containment, which matches the
/// span tree because children are recorded within their parent's interval.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::from("[");
    for (i, span) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\"args\":{{",
            json_escape_str(span.name),
            fmt_us(span.start_ns),
            fmt_us(span.dur_ns),
        ));
        out.push_str(&format!("\"trace\":\"{}\",\"span\":{}", trace.id, span.id));
        if let Some(parent) = span.parent {
            out.push_str(&format!(",\"parent\":{parent}"));
        }
        for (key, value) in &span.args {
            out.push_str(&format!(",\"{key}\":{}", value.to_json()));
        }
        out.push_str("}}");
    }
    out.push(']');
    out
}

/// Renders a trace as a compact single-line JSON object for the wire:
/// `{"trace":"<id>","duration_us":…,"spans":[…]}`.
pub fn compact_json(trace: &Trace) -> String {
    let mut out = format!(
        "{{\"trace\":\"{}\",\"duration_us\":{},\"spans\":[",
        trace.id,
        fmt_us(trace.duration_ns())
    );
    for (i, span) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"span\":{},\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}",
            span.id,
            json_escape_str(span.name),
            fmt_us(span.start_ns),
            fmt_us(span.dur_ns),
        ));
        if let Some(parent) = span.parent {
            out.push_str(&format!(",\"parent\":{parent}"));
        }
        for (key, value) in &span.args {
            out.push_str(&format!(",\"{key}\":{}", value.to_json()));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders a trace as a human-readable indented tree, one span per line:
/// `name start_us+dur_us key=value …`, children indented under parents.
pub fn render_tree(trace: &Trace) -> String {
    let mut children: HashMap<Option<SpanId>, Vec<&SpanRecord>> = HashMap::new();
    let ids: std::collections::HashSet<SpanId> = trace.spans.iter().map(|s| s.id).collect();
    for span in &trace.spans {
        // Orphans (parent never recorded) render at the root level.
        let key = span.parent.filter(|p| ids.contains(p));
        children.entry(key).or_default().push(span);
    }
    let mut out = format!(
        "trace {} ({} spans, {}us total)",
        trace.id,
        trace.spans.len(),
        fmt_us(trace.duration_ns())
    );
    fn walk(
        out: &mut String,
        children: &HashMap<Option<SpanId>, Vec<&SpanRecord>>,
        parent: Option<SpanId>,
        depth: usize,
    ) {
        let Some(spans) = children.get(&parent) else {
            return;
        };
        for span in spans {
            out.push('\n');
            out.push_str(&"  ".repeat(depth + 1));
            out.push_str(&format!(
                "{} {}us +{}us",
                span.name,
                fmt_us(span.start_ns),
                fmt_us(span.dur_ns)
            ));
            for (key, value) in &span.args {
                out.push_str(&format!(" {key}={}", value.to_display()));
            }
            walk(out, children, Some(span.id), depth + 1);
        }
    }
    walk(&mut out, &children, None, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_hex_roundtrip() {
        let id = TraceId(0x2a);
        assert_eq!(id.to_string(), "2a");
        assert_eq!(TraceId::parse("2a"), Some(id));
        assert_eq!(TraceId::parse(" 2a \n"), Some(id));
        assert_eq!(TraceId::parse("zz"), None);
    }

    #[test]
    fn builder_records_nested_spans_with_epoch_offsets() {
        let builder = TraceBuilder::new(TraceId(7));
        let epoch = builder.epoch();
        let root = builder.next_span_id();
        let child_start = epoch + Duration::from_micros(10);
        builder.record_new(
            Some(root),
            "child",
            child_start,
            Duration::from_micros(5),
            vec![("round", ArgValue::U64(0))],
        );
        builder.record(
            root,
            None,
            "root",
            epoch,
            Duration::from_micros(20),
            vec![("cmd", ArgValue::Str("quantile".into()))],
        );
        let trace = builder.finish();
        assert_eq!(trace.id, TraceId(7));
        assert_eq!(trace.spans.len(), 2);
        let root_span = trace.root().expect("root present");
        assert_eq!(root_span.name, "root");
        assert_eq!(root_span.start_ns, 0);
        let child = trace.spans_named("child").next().expect("child present");
        assert_eq!(child.parent, Some(root_span.id));
        assert_eq!(child.start_ns, 10_000);
        assert_eq!(child.dur_ns, 5_000);
        assert!(child.end_ns() <= root_span.end_ns());
        assert_eq!(child.arg("round").and_then(ArgValue::as_u64), Some(0));
        assert_eq!(trace.duration_ns(), 20_000);
    }

    #[test]
    fn finish_drains_the_builder() {
        let builder = TraceBuilder::new(TraceId(1));
        builder.record_new(None, "a", builder.epoch(), Duration::ZERO, Vec::new());
        assert_eq!(builder.len(), 1);
        assert_eq!(builder.finish().spans.len(), 1);
        assert!(builder.is_empty());
    }

    #[test]
    fn trace_context_installs_and_restores() {
        assert!(current_trace_context().is_none());
        let builder = TraceBuilder::new(TraceId(3));
        let parent = builder.next_span_id();
        let ctx = TraceContext {
            builder: builder.clone(),
            parent,
        };
        with_trace_context(ctx, || {
            let current = current_trace_context().expect("installed");
            assert_eq!(current.builder.id(), TraceId(3));
            assert_eq!(current.parent, parent);
            let inner = TraceContext {
                builder: builder.clone(),
                parent: builder.next_span_id(),
            };
            with_trace_context(inner, || {
                assert_ne!(current_trace_context().unwrap().parent, parent);
            });
            assert_eq!(current_trace_context().unwrap().parent, parent);
        });
        assert!(current_trace_context().is_none());
    }

    #[test]
    fn flight_recorder_bounds_and_orders() {
        let recorder = FlightRecorder::new(3);
        assert!(recorder.is_enabled());
        assert!(recorder.is_empty());
        for _ in 0..5 {
            let id = recorder.next_trace_id();
            recorder.push(Trace {
                id,
                spans: Vec::new(),
            });
        }
        assert_eq!(recorder.len(), 3);
        let last = recorder.last(10);
        let ids: Vec<u64> = last.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![5, 4, 3]);
        assert!(recorder.get(TraceId(4)).is_some());
        assert!(recorder.get(TraceId(1)).is_none());
        assert_eq!(recorder.last(1).len(), 1);
    }

    #[test]
    fn zero_capacity_recorder_is_disabled() {
        let recorder = FlightRecorder::new(0);
        assert!(!recorder.is_enabled());
        let id = recorder.next_trace_id();
        recorder.push(Trace {
            id,
            spans: Vec::new(),
        });
        assert!(recorder.is_empty());
        assert!(recorder.last(1).is_empty());
    }

    fn sample_trace() -> Trace {
        let builder = TraceBuilder::new(TraceId(0xbeef));
        let epoch = builder.epoch();
        let root = builder.next_span_id();
        builder.record_new(
            Some(root),
            "solve",
            epoch + Duration::from_micros(2),
            Duration::from_micros(90),
            vec![
                ("plan", ArgValue::Str("likes \"q\"".into())),
                ("rounds", ArgValue::U64(4)),
                ("hit", ArgValue::Bool(false)),
                ("phi", ArgValue::F64(0.5)),
            ],
        );
        builder.record(
            root,
            None,
            "request",
            epoch,
            Duration::from_micros(100),
            Vec::new(),
        );
        builder.finish()
    }

    #[test]
    fn chrome_export_is_one_line_complete_events() {
        let json = chrome_trace_json(&sample_trace());
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(!json.contains('\n'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"name\":\"solve\""));
        assert!(json.contains("\"ts\":2.000"));
        assert!(json.contains("\"dur\":90.000"));
        assert!(json.contains("\"rounds\":4"));
        assert!(json.contains("\"hit\":false"));
        assert!(json.contains("\"phi\":0.5"));
        assert!(json.contains("\"plan\":\"likes \\\"q\\\"\""));
        assert!(json.contains("\"parent\":1"));
    }

    #[test]
    fn compact_json_is_one_line() {
        let json = compact_json(&sample_trace());
        assert!(json.starts_with("{\"trace\":\"beef\""));
        assert!(!json.contains('\n'));
        assert!(json.contains("\"duration_us\":100.000"));
        assert!(json.contains("\"name\":\"request\""));
    }

    #[test]
    fn tree_rendering_indents_children() {
        let text = render_tree(&sample_trace());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("trace beef (2 spans"));
        assert!(lines[1].starts_with("  request "));
        assert!(lines[2].starts_with("    solve "));
        assert!(lines[2].contains("rounds=4"));
        assert!(lines[2].contains("plan=\"likes \\\"q\\\"\""));
    }
}
