//! # qjoin-telemetry
//!
//! The workspace's std-only observability substrate: the same log-bucketed
//! histogram structure that approximate-quantile systems (the DDSketch / Moments
//! lineage) serve *answers* from, turned inward to instrument our own request and
//! solve latencies.
//!
//! Three layers, no dependencies, no locks on the hot path:
//!
//! * [`Histogram`] — a lock-free log-bucketed latency histogram: an array of
//!   relaxed atomic buckets indexed by the value's binary exponent plus four
//!   linear sub-bucket bits, giving ≤ 1/16 relative error per bucket. Recording
//!   is a handful of relaxed atomic adds; [`Histogram::snapshot`] materializes a
//!   mergeable [`HistogramSnapshot`] with p50/p90/p99/max extraction.
//! * [`Registry`] — a named-metric registry of [`Counter`]s, [`Gauge`]s, and
//!   histograms, keyed by `(name, sorted label pairs)`. Registration is
//!   get-or-create, so independent subsystems can share one metric by agreeing
//!   on its name.
//! * [`export`] — [`MetricsSnapshot`] rendering: Prometheus-style text
//!   exposition lines ([`export::render_prometheus`]) and a single JSON object
//!   ([`export::render_json`]).
//! * [`span`] — per-request span tracing: counter-derived [`TraceId`]s, a
//!   shareable [`TraceBuilder`], a bounded [`FlightRecorder`] ring of completed
//!   span trees, an ambient thread-local [`TraceContext`], and exporters
//!   (Chrome trace-event JSON, compact wire JSON, human-readable tree).
//!
//! ## Unit convention
//!
//! Histograms **record nanoseconds** (`u64`); both exporters render them as
//! **seconds**, so histogram metric names should end in `_seconds`
//! (`qjoin_solve_seconds`, `qjoin_queue_wait_seconds`, …). Counters and gauges
//! are unitless and exported verbatim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod histogram;
pub mod registry;
pub mod span;

pub use export::{render_json, render_prometheus};
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, MetricSample, MetricsSnapshot, Registry, SampleValue};
pub use span::{
    chrome_trace_json, compact_json, current_trace_context, render_tree, with_trace_context,
    ArgValue, FlightRecorder, SpanId, SpanRecord, Trace, TraceBuilder, TraceContext, TraceId,
};
