//! Direct access to (unordered) join answers by index, and uniform sampling.
//!
//! Section 3.1 of the paper observes that a randomized ε-approximate quantile follows
//! from the ability to sample answers uniformly, which in turn follows from a
//! direct-access structure for the answers of an acyclic JQ built in linear time with
//! logarithmic access time. This module implements such a structure using per-tuple
//! subtree counts and prefix sums over join groups: the answers are indexed in a fixed
//! (but otherwise arbitrary) order, and `answer_at(i)` reconstructs the i-th answer by
//! a top-down walk that peels off mixed-radix digits.

use crate::count::subtree_counts;
use crate::encoded::{self, EncodedContext, Key};
use crate::{ExecError, JoinTreeContext, Result};
use qjoin_data::{Dictionary, Value};
use qjoin_query::{Assignment, EncodedInstance, Instance};
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// A direct-access index over the answers of an acyclic instance.
///
/// Preprocessing is linear in the database; each access costs `O(log n)` per query atom
/// (binary searches over group prefix sums).
pub struct DirectAccess {
    ctx: JoinTreeContext,
    /// Prefix sums over the root's tuples.
    root_prefix: Vec<u128>,
    /// For every non-root node: join key → (tuple indices of the group, prefix sums of
    /// their counts). The group total is the last prefix entry.
    group_index: Vec<HashMap<Vec<Value>, GroupPrefix>>,
    total: u128,
}

#[derive(Clone, Debug)]
struct GroupPrefix {
    members: Vec<usize>,
    prefix: Vec<u128>,
}

impl GroupPrefix {
    fn total(&self) -> u128 {
        *self.prefix.last().unwrap_or(&0)
    }

    /// Locates the member whose block contains `offset`, returning the member's tuple
    /// index and the offset within its block.
    fn locate(&self, offset: u128) -> (usize, u128) {
        // prefix[i] = total count of members[0..=i]; find first i with prefix[i] > offset.
        let mut lo = 0usize;
        let mut hi = self.prefix.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.prefix[mid] > offset {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let before = if lo == 0 { 0 } else { self.prefix[lo - 1] };
        (self.members[lo], offset - before)
    }
}

impl DirectAccess {
    /// Builds the index for an acyclic instance.
    pub fn new(instance: &Instance) -> Result<Self> {
        let ctx = JoinTreeContext::build(instance)?;
        Ok(Self::from_context(ctx))
    }

    /// Builds the index from an already-constructed context.
    pub fn from_context(ctx: JoinTreeContext) -> Self {
        if ctx.has_no_answers() {
            let n_nodes = ctx.nodes().len();
            return DirectAccess {
                ctx,
                root_prefix: Vec::new(),
                group_index: vec![HashMap::new(); n_nodes],
                total: 0,
            };
        }
        let counts = subtree_counts(&ctx).per_tuple;
        let root = ctx.root();
        let mut root_prefix = Vec::with_capacity(counts[root].len());
        let mut acc = 0u128;
        for &c in &counts[root] {
            acc += c;
            root_prefix.push(acc);
        }
        let total = acc;

        let mut group_index: Vec<HashMap<Vec<Value>, GroupPrefix>> =
            vec![HashMap::new(); ctx.nodes().len()];
        for node in ctx.nodes() {
            if node.node_id == root {
                continue;
            }
            let mut map = HashMap::with_capacity(node.groups.len());
            for (key, members) in &node.groups {
                let mut prefix = Vec::with_capacity(members.len());
                let mut acc = 0u128;
                for &m in members {
                    acc += counts[node.node_id][m];
                    prefix.push(acc);
                }
                map.insert(
                    key.clone(),
                    GroupPrefix {
                        members: members.clone(),
                        prefix,
                    },
                );
            }
            group_index[node.node_id] = map;
        }

        DirectAccess {
            ctx,
            root_prefix,
            group_index,
            total,
        }
    }

    /// The total number of answers `|Q(D)|`.
    pub fn total(&self) -> u128 {
        self.total
    }

    /// The underlying context.
    pub fn context(&self) -> &JoinTreeContext {
        &self.ctx
    }

    /// Returns the answer at position `index` (0-based) in the structure's fixed
    /// enumeration order.
    pub fn answer_at(&self, index: u128) -> Result<Assignment> {
        if index >= self.total {
            return Err(ExecError::IndexOutOfRange {
                requested: index,
                total: self.total,
            });
        }
        // Locate the root tuple whose block contains `index`.
        let root = self.ctx.root();
        let mut lo = 0usize;
        let mut hi = self.root_prefix.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.root_prefix[mid] > index {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let before = if lo == 0 { 0 } else { self.root_prefix[lo - 1] };
        let mut assignment = Assignment::empty();
        self.descend(root, lo, index - before, &mut assignment);
        Ok(assignment)
    }

    /// Samples an answer uniformly at random.
    pub fn sample(&self, rng: &mut impl Rng) -> Result<Assignment> {
        if self.total == 0 {
            return Err(ExecError::NoAnswers);
        }
        let idx = rng.random_range(0..self.total);
        self.answer_at(idx)
    }

    /// Recursively reconstructs the `offset`-th answer of the subtree rooted at the
    /// given tuple of `node`.
    fn descend(&self, node: usize, tuple_idx: usize, offset: u128, out: &mut Assignment) {
        let partial = self.ctx.partial_assignment(node, tuple_idx);
        *out = out.union(&partial).expect("join keys force consistency");

        let children = &self.ctx.tree().node(node).children;
        if children.is_empty() {
            debug_assert_eq!(offset, 0);
            return;
        }
        let tuple = &self.ctx.node(node).tuples[tuple_idx];
        // The subtree count factorizes over the children's group totals; peel off one
        // mixed-radix digit per child.
        let totals: Vec<u128> = children
            .iter()
            .map(|&c| {
                let key = self.ctx.node(c).key_from_parent(tuple);
                self.group_index[c][&key].total()
            })
            .collect();
        let mut remainder = offset;
        for (i, &child) in children.iter().enumerate() {
            let radix_rest: u128 = totals[i + 1..].iter().product();
            let digit = remainder / radix_rest;
            remainder %= radix_rest;
            let key = self.ctx.node(child).key_from_parent(tuple);
            let group = &self.group_index[child][&key];
            let (child_tuple, child_offset) = group.locate(digit);
            self.descend(child, child_tuple, child_offset, out);
        }
    }
}

/// The encoded twin of [`DirectAccess`]: a direct-access index over the answers of
/// an acyclic [`EncodedInstance`], decoding codes back to values only at the answer
/// boundary.
///
/// The enumeration order is **pointwise identical** to [`DirectAccess`] over the
/// corresponding row instance: both contexts keep surviving tuples in relation
/// order and group members ascending, so `answer_at(i)` returns the same
/// assignment on both paths — which is what makes seeded sampling reproducible
/// across backends.
///
/// Precondition: every column of the instance is a dictionary code (no synthesized
/// columns), i.e. the instance is an un-trimmed encoding of a row database.
pub struct EncodedDirectAccess {
    ctx: EncodedContext,
    dictionary: Arc<Dictionary>,
    /// Prefix sums over the root's surviving rows.
    root_prefix: Vec<u128>,
    /// For every non-root node: join key → (row indices of the group, prefix sums of
    /// their subtree counts).
    group_index: Vec<HashMap<Key, GroupPrefix>>,
    total: u128,
}

impl EncodedDirectAccess {
    /// Builds the index for an acyclic encoded instance.
    pub fn new(instance: &EncodedInstance) -> Result<Self> {
        let ctx = EncodedContext::build(instance)?;
        Ok(Self::from_context(ctx, Arc::clone(instance.dictionary())))
    }

    /// Builds the index from an already-constructed encoded context.
    pub fn from_context(ctx: EncodedContext, dictionary: Arc<Dictionary>) -> Self {
        if ctx.has_no_answers() {
            let n_nodes = ctx.nodes().len();
            return EncodedDirectAccess {
                ctx,
                dictionary,
                root_prefix: Vec::new(),
                group_index: vec![HashMap::new(); n_nodes],
                total: 0,
            };
        }
        let counts = encoded::subtree_counts(&ctx).per_tuple;
        let root = ctx.root();
        let mut root_prefix = Vec::with_capacity(counts[root].len());
        let mut acc = 0u128;
        for &c in &counts[root] {
            acc += c;
            root_prefix.push(acc);
        }
        let total = acc;

        let mut group_index: Vec<HashMap<Key, GroupPrefix>> =
            vec![HashMap::new(); ctx.nodes().len()];
        for node in ctx.nodes() {
            if node.node_id == root {
                continue;
            }
            let mut map = HashMap::with_capacity(node.groups.len());
            for (key, members) in &node.groups {
                let mut prefix = Vec::with_capacity(members.len());
                let mut acc = 0u128;
                for &m in members {
                    acc += counts[node.node_id][m as usize];
                    prefix.push(acc);
                }
                map.insert(
                    key.clone(),
                    GroupPrefix {
                        members: members.iter().map(|&m| m as usize).collect(),
                        prefix,
                    },
                );
            }
            group_index[node.node_id] = map;
        }

        EncodedDirectAccess {
            ctx,
            dictionary,
            root_prefix,
            group_index,
            total,
        }
    }

    /// The total number of answers `|Q(D)|`.
    pub fn total(&self) -> u128 {
        self.total
    }

    /// The underlying context.
    pub fn context(&self) -> &EncodedContext {
        &self.ctx
    }

    /// Returns the answer at position `index` (0-based) in the structure's fixed
    /// enumeration order, decoded to an assignment over the query's variables.
    pub fn answer_at(&self, index: u128) -> Result<Assignment> {
        if index >= self.total {
            return Err(ExecError::IndexOutOfRange {
                requested: index,
                total: self.total,
            });
        }
        let root = self.ctx.root();
        let mut lo = 0usize;
        let mut hi = self.root_prefix.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.root_prefix[mid] > index {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let before = if lo == 0 { 0 } else { self.root_prefix[lo - 1] };
        let mut assignment = Assignment::empty();
        self.descend(root, lo, index - before, &mut assignment);
        Ok(assignment)
    }

    /// Samples an answer uniformly at random. The RNG consumption is identical to
    /// [`DirectAccess::sample`], so seeded draws agree across backends.
    pub fn sample(&self, rng: &mut impl Rng) -> Result<Assignment> {
        if self.total == 0 {
            return Err(ExecError::NoAnswers);
        }
        let idx = rng.random_range(0..self.total);
        self.answer_at(idx)
    }

    fn descend(&self, node: usize, row_idx: usize, offset: u128, out: &mut Assignment) {
        let atom = self.ctx.query().atom(self.ctx.node(node).atom_index);
        for (v, pos) in atom.distinct_variable_positions() {
            let value = self
                .dictionary
                .decode(self.ctx.code(node, row_idx, pos))
                .clone();
            out.bind(v, value);
        }

        let children = &self.ctx.tree().node(node).children;
        if children.is_empty() {
            debug_assert_eq!(offset, 0);
            return;
        }
        let totals: Vec<u128> = children
            .iter()
            .map(|&c| {
                let key = self.ctx.key_from_parent(c, row_idx);
                self.group_index[c][&key].total()
            })
            .collect();
        let mut remainder = offset;
        for (i, &child) in children.iter().enumerate() {
            let radix_rest: u128 = totals[i + 1..].iter().product();
            let digit = remainder / radix_rest;
            remainder %= radix_rest;
            let key = self.ctx.key_from_parent(child, row_idx);
            let group = &self.group_index[child][&key];
            let (child_row, child_offset) = group.locate(digit);
            self.descend(child, child_row, child_offset, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yannakakis::materialize;
    use qjoin_data::{Database, Relation};
    use qjoin_query::query::{figure1_query, path_query};
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn figure1_instance() -> Instance {
        let r = Relation::from_rows("R", &[&[1, 1], &[2, 2]]).unwrap();
        let s = Relation::from_rows("S", &[&[1, 3], &[1, 4], &[1, 5], &[2, 3], &[2, 4]]).unwrap();
        let t = Relation::from_rows("T", &[&[1, 6], &[1, 7], &[2, 6]]).unwrap();
        let u = Relation::from_rows("U", &[&[6, 8], &[6, 9], &[7, 9]]).unwrap();
        Instance::new(
            figure1_query(),
            Database::from_relations([r, s, t, u]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn total_matches_count_and_indices_are_distinct_answers() {
        let inst = figure1_instance();
        let da = DirectAccess::new(&inst).unwrap();
        assert_eq!(da.total(), 13);
        let mut seen = HashSet::new();
        for i in 0..13u128 {
            let a = da.answer_at(i).unwrap();
            assert_eq!(a.len(), inst.query().variables().len());
            seen.insert(format!("{a:?}"));
        }
        assert_eq!(seen.len(), 13);
    }

    #[test]
    fn all_indexed_answers_are_real_answers() {
        let inst = figure1_instance();
        let da = DirectAccess::new(&inst).unwrap();
        let materialized = materialize(&inst).unwrap();
        let all: HashSet<String> = materialized
            .iter_assignments()
            .map(|a| format!("{a:?}"))
            .collect();
        for i in 0..da.total() {
            let a = da.answer_at(i).unwrap();
            assert!(all.contains(&format!("{a:?}")));
        }
    }

    #[test]
    fn out_of_range_access_errors() {
        let da = DirectAccess::new(&figure1_instance()).unwrap();
        assert!(matches!(
            da.answer_at(13).unwrap_err(),
            ExecError::IndexOutOfRange { .. }
        ));
    }

    #[test]
    fn empty_instances_have_zero_total_and_sampling_fails() {
        let r1 = Relation::from_rows("R1", &[&[1, 1]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[2, 5]]).unwrap();
        let inst =
            Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap();
        let da = DirectAccess::new(&inst).unwrap();
        assert_eq!(da.total(), 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(matches!(
            da.sample(&mut rng).unwrap_err(),
            ExecError::NoAnswers
        ));
    }

    #[test]
    fn sampling_hits_every_answer_eventually() {
        let inst = figure1_instance();
        let da = DirectAccess::new(&inst).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            let a = da.sample(&mut rng).unwrap();
            seen.insert(format!("{a:?}"));
        }
        assert_eq!(seen.len(), 13, "uniform sampling should reach all answers");
    }

    #[test]
    fn encoded_access_is_pointwise_identical_to_row_access() {
        let inst = figure1_instance();
        let row = DirectAccess::new(&inst).unwrap();
        let enc_inst = qjoin_query::EncodedInstance::from_instance(&inst).unwrap();
        let enc = EncodedDirectAccess::new(&enc_inst).unwrap();
        assert_eq!(row.total(), enc.total());
        for i in 0..row.total() {
            assert_eq!(
                row.answer_at(i).unwrap(),
                enc.answer_at(i).unwrap(),
                "index {i}"
            );
        }
    }

    #[test]
    fn encoded_sampling_is_seed_identical_to_row_sampling() {
        let inst = figure1_instance();
        let row = DirectAccess::new(&inst).unwrap();
        let enc_inst = qjoin_query::EncodedInstance::from_instance(&inst).unwrap();
        let enc = EncodedDirectAccess::new(&enc_inst).unwrap();
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(99);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(
                row.sample(&mut rng_a).unwrap(),
                enc.sample(&mut rng_b).unwrap()
            );
        }
    }

    #[test]
    fn encoded_access_on_empty_instance_has_zero_total() {
        let r1 = Relation::from_rows("R1", &[&[1, 1]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[2, 5]]).unwrap();
        let inst =
            Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap();
        let enc_inst = qjoin_query::EncodedInstance::from_instance(&inst).unwrap();
        let enc = EncodedDirectAccess::new(&enc_inst).unwrap();
        assert_eq!(enc.total(), 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(matches!(
            enc.sample(&mut rng).unwrap_err(),
            ExecError::NoAnswers
        ));
    }

    #[test]
    fn sampling_is_close_to_uniform() {
        let inst = figure1_instance();
        let da = DirectAccess::new(&inst).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut histogram: std::collections::HashMap<String, usize> = Default::default();
        let draws = 13_000usize;
        for _ in 0..draws {
            let a = da.sample(&mut rng).unwrap();
            *histogram.entry(format!("{a:?}")).or_default() += 1;
        }
        let expected = draws as f64 / 13.0;
        for (_, &count) in histogram.iter() {
            assert!(
                (count as f64) > expected * 0.6 && (count as f64) < expected * 1.4,
                "sample frequency {count} too far from expected {expected}"
            );
        }
    }
}
