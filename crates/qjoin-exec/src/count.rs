//! Linear-time counting of the answers to an acyclic join query (Example 2.1).

use crate::message_passing::{self, MessageAlgebra, MessagePassingResult};
use crate::{JoinTreeContext, Result};
use qjoin_query::Instance;

/// The counting instance of the message-passing pattern: every tuple starts with
/// count 1, join groups are combined by summation, and child messages are absorbed by
/// multiplication. `val(t)` then equals the number of partial answers of the subtree
/// rooted at `t` (Figure 1 of the paper).
///
/// Counts are `u128`: the number of answers is bounded by `n^ℓ`, which comfortably fits
/// for the database sizes and query sizes this library targets (`n ≤ 10^7`, `ℓ ≤ 5`
/// gives at most `10^35 < 2^128`).
pub struct CountAlgebra;

impl MessageAlgebra for CountAlgebra {
    type Msg = u128;

    fn tuple_init(&self, _ctx: &JoinTreeContext, _node: usize, _tuple_idx: usize) -> u128 {
        1
    }

    fn combine_group(&self, _ctx: &JoinTreeContext, _node: usize, group: &[(usize, u128)]) -> u128 {
        group.iter().map(|(_, c)| *c).sum()
    }

    fn absorb(
        &self,
        _ctx: &JoinTreeContext,
        _node: usize,
        _tuple_idx: usize,
        own: u128,
        child_group_msg: &u128,
    ) -> u128 {
        own.checked_mul(*child_group_msg)
            .expect("answer count overflowed u128")
    }
}

/// Per-tuple subtree answer counts for every node of the context.
pub fn subtree_counts(ctx: &JoinTreeContext) -> MessagePassingResult<u128> {
    message_passing::run(ctx, &CountAlgebra)
}

/// The number of answers `|Q(D)|` of the context's instance.
pub fn count_answers_ctx(ctx: &JoinTreeContext) -> u128 {
    if ctx.has_no_answers() {
        return 0;
    }
    let counts = subtree_counts(ctx);
    counts.per_tuple[ctx.root()].iter().sum()
}

/// The number of answers `|Q(D)|` of an acyclic instance, in time linear in the
/// database (up to hashing).
pub fn count_answers(instance: &Instance) -> Result<u128> {
    let ctx = JoinTreeContext::build(instance)?;
    Ok(count_answers_ctx(&ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_data::{Database, Relation, Value};
    use qjoin_query::query::{figure1_query, path_query, star_query};
    use qjoin_query::{Atom, Instance, JoinQuery};

    fn figure1_instance() -> Instance {
        let r = Relation::from_rows("R", &[&[1, 1], &[2, 2]]).unwrap();
        let s = Relation::from_rows("S", &[&[1, 3], &[1, 4], &[1, 5], &[2, 3], &[2, 4]]).unwrap();
        let t = Relation::from_rows("T", &[&[1, 6], &[1, 7], &[2, 6]]).unwrap();
        let u = Relation::from_rows("U", &[&[6, 8], &[6, 9], &[7, 9]]).unwrap();
        Instance::new(
            figure1_query(),
            Database::from_relations([r, s, t, u]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn figure1_count_is_thirteen() {
        // The paper's Example 2.1: the two root counts 9 and 4 sum to 13.
        assert_eq!(count_answers(&figure1_instance()).unwrap(), 13);
    }

    #[test]
    fn empty_join_counts_zero() {
        let r1 = Relation::from_rows("R1", &[&[1, 1]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[2, 5]]).unwrap();
        let inst =
            Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap();
        assert_eq!(count_answers(&inst).unwrap(), 0);
    }

    #[test]
    fn cartesian_product_counts_multiply() {
        let a = Relation::from_rows("A", &[&[1], &[2], &[3]]).unwrap();
        let b = Relation::from_rows("B", &[&[1], &[2], &[3], &[4]]).unwrap();
        let q = JoinQuery::new(vec![
            Atom::from_names("A", &["x"]),
            Atom::from_names("B", &["y"]),
        ]);
        let inst = Instance::new(q, Database::from_relations([a, b]).unwrap()).unwrap();
        assert_eq!(count_answers(&inst).unwrap(), 12);
    }

    #[test]
    fn star_query_count_matches_product_of_group_sizes() {
        // All relations share x0 = 0, so the count is the product of relation sizes.
        let mut db = Database::new();
        for i in 1..=3 {
            let mut rel = Relation::new(format!("R{i}"), 2);
            for j in 0..(i + 1) as i64 {
                rel.push(vec![Value::from(0), Value::from(j)]).unwrap();
            }
            db.add_relation(rel).unwrap();
        }
        let inst = Instance::new(star_query(3), db).unwrap();
        assert_eq!(count_answers(&inst).unwrap(), 2 * 3 * 4);
    }

    #[test]
    fn path_query_count_matches_brute_force() {
        // 3-path over small relations; compare against a nested-loop count.
        let r1: Vec<[i64; 2]> = vec![[1, 1], [1, 2], [2, 2], [3, 1]];
        let r2: Vec<[i64; 2]> = vec![[1, 4], [2, 4], [2, 5]];
        let r3: Vec<[i64; 2]> = vec![[4, 0], [4, 1], [5, 9]];
        let mut expected = 0u128;
        for a in &r1 {
            for b in &r2 {
                for c in &r3 {
                    if a[1] == b[0] && b[1] == c[0] {
                        expected += 1;
                    }
                }
            }
        }
        let to_rel = |name: &str, rows: &Vec<[i64; 2]>| {
            let rows: Vec<Vec<i64>> = rows.iter().map(|r| r.to_vec()).collect();
            let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            Relation::from_rows(name, &refs).unwrap()
        };
        let inst = Instance::new(
            path_query(3),
            Database::from_relations([to_rel("R1", &r1), to_rel("R2", &r2), to_rel("R3", &r3)])
                .unwrap(),
        )
        .unwrap();
        assert_eq!(count_answers(&inst).unwrap(), expected);
        assert!(expected > 0);
    }

    #[test]
    fn counts_are_invariant_under_rerooting() {
        let inst = figure1_instance();
        let base_tree = qjoin_query::acyclicity::gyo_join_tree(inst.query()).unwrap();
        for root in 0..base_tree.num_nodes() {
            let tree = base_tree.rerooted(root);
            let ctx = JoinTreeContext::build_with_tree(&inst, tree).unwrap();
            assert_eq!(count_answers_ctx(&ctx), 13, "root {root}");
        }
    }
}
