//! Materialized answer sets.

use qjoin_data::Value;
use qjoin_query::{Assignment, Variable};
use std::fmt;

/// A materialized set of query answers in a compact, positional representation.
///
/// Every row assigns the i-th value to the i-th variable of [`AnswerSet::variables`].
/// The quantile driver only ever materializes answer sets of size `O(n)` (the final
/// "few candidates remain" step of Algorithm 1); the brute-force baseline materializes
/// the full join result and is the reason the positional layout matters.
#[derive(Clone, PartialEq, Eq)]
pub struct AnswerSet {
    variables: Vec<Variable>,
    rows: Vec<Vec<Value>>,
}

impl AnswerSet {
    /// Creates an empty answer set over the given variable schema.
    pub fn new(variables: Vec<Variable>) -> Self {
        AnswerSet {
            variables,
            rows: Vec::new(),
        }
    }

    /// The answer schema: variables in positional order.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no answers.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Mutable access to the rows (used by sorting-based baselines).
    pub fn rows_mut(&mut self) -> &mut Vec<Vec<Value>> {
        &mut self.rows
    }

    /// Appends a row; panics if its width does not match the schema.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.variables.len(),
            "answer row width must match the variable schema"
        );
        self.rows.push(row);
    }

    /// Position of a variable in the schema.
    pub fn position_of(&self, var: &Variable) -> Option<usize> {
        self.variables.iter().position(|v| v == var)
    }

    /// The value of `var` in row `row`.
    pub fn value(&self, row: usize, var: &Variable) -> Option<&Value> {
        let pos = self.position_of(var)?;
        self.rows.get(row).map(|r| &r[pos])
    }

    /// Converts row `row` into an explicit [`Assignment`].
    pub fn assignment(&self, row: usize) -> Assignment {
        Assignment::from_pairs(
            self.variables
                .iter()
                .cloned()
                .zip(self.rows[row].iter().cloned()),
        )
    }

    /// Iterates over all rows as [`Assignment`]s.
    pub fn iter_assignments(&self) -> impl Iterator<Item = Assignment> + '_ {
        (0..self.rows.len()).map(|i| self.assignment(i))
    }

    /// Sorts rows by a key extracted from each row.
    pub fn sort_by_key_fn<K: Ord>(&mut self, mut key: impl FnMut(&[Value]) -> K) {
        self.rows.sort_by_key(|r| key(r));
    }
}

impl fmt::Debug for AnswerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AnswerSet[")?;
        for (i, v) in self.variables.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        writeln!(f, "] ({} rows)", self.rows.len())?;
        for row in self.rows.iter().take(20) {
            writeln!(f, "  {row:?}")?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "  ... ({} more)", self.rows.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_query::variable::vars;

    fn sample() -> AnswerSet {
        let mut a = AnswerSet::new(vars(&["x", "y"]));
        a.push_row(vec![Value::from(1), Value::from(10)]);
        a.push_row(vec![Value::from(2), Value::from(20)]);
        a
    }

    #[test]
    fn push_and_read_back() {
        let a = sample();
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.value(1, &Variable::new("y")), Some(&Value::from(20)));
        assert_eq!(a.value(0, &Variable::new("z")), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut a = AnswerSet::new(vars(&["x", "y"]));
        a.push_row(vec![Value::from(1)]);
    }

    #[test]
    fn assignment_conversion_round_trips() {
        let a = sample();
        let asg = a.assignment(0);
        assert_eq!(asg.get(&Variable::new("x")), Some(&Value::from(1)));
        assert_eq!(asg.get(&Variable::new("y")), Some(&Value::from(10)));
        assert_eq!(a.iter_assignments().count(), 2);
    }

    #[test]
    fn sorting_by_key_reorders_rows() {
        let mut a = sample();
        a.sort_by_key_fn(|row| std::cmp::Reverse(row[0].as_int().unwrap()));
        assert_eq!(a.rows()[0][0], Value::from(2));
    }
}
