//! Join-tree execution contexts: materialized, semi-join reduced node relations with
//! join-group indexes.

use crate::{ExecError, Result};
use qjoin_data::{Tuple, Value};
use qjoin_query::{acyclicity, Assignment, Instance, JoinQuery, JoinTree, Variable};
use std::collections::HashMap;

/// Per-node state of a [`JoinTreeContext`].
#[derive(Clone, Debug)]
pub struct NodeData {
    /// The join-tree node id this data belongs to.
    pub node_id: usize,
    /// Index of the query atom materialized at this node.
    pub atom_index: usize,
    /// The node's tuples after semi-join reduction (every tuple participates in at
    /// least one query answer).
    pub tuples: Vec<Tuple>,
    /// Variables shared with the parent node, in sorted order (empty for the root).
    pub shared_vars: Vec<Variable>,
    /// Positions of `shared_vars` within this node's atom.
    pub own_key_positions: Vec<usize>,
    /// Positions of `shared_vars` within the parent node's atom.
    pub parent_key_positions: Vec<usize>,
    /// Join groups: join-key values → indices into `tuples`. All tuples in a group
    /// agree on the variables shared with the parent (Section 2.4 of the paper).
    pub groups: HashMap<Vec<Value>, Vec<usize>>,
}

impl NodeData {
    /// The join key of one of this node's own tuples (its projection onto the
    /// variables shared with the parent).
    pub fn own_key(&self, tuple: &Tuple) -> Vec<Value> {
        self.own_key_positions
            .iter()
            .map(|&p| tuple[p].clone())
            .collect()
    }

    /// The join key that a *parent* tuple exposes towards this node.
    pub fn key_from_parent(&self, parent_tuple: &Tuple) -> Vec<Value> {
        self.parent_key_positions
            .iter()
            .map(|&p| parent_tuple[p].clone())
            .collect()
    }
}

/// A rooted join tree together with materialized, semi-join reduced relations and
/// join-group indexes for every node.
///
/// Building a context performs the "preprocessing" of the message-passing pattern
/// (Section 2.4): choose a join tree, materialize a relation per node, and group each
/// child relation by the variables shared with its parent. On top of that, the full
/// reducer (Yannakakis' semi-join program) is applied so that every remaining tuple
/// participates in at least one query answer; this keeps the counting, pivoting, and
/// direct-access algorithms free of dangling-tuple special cases.
#[derive(Clone, Debug)]
pub struct JoinTreeContext {
    query: JoinQuery,
    tree: JoinTree,
    nodes: Vec<NodeData>,
}

impl JoinTreeContext {
    /// Builds a context for an acyclic instance using its GYO join tree.
    pub fn build(instance: &Instance) -> Result<Self> {
        let tree = acyclicity::gyo_join_tree(instance.query())
            .ok_or_else(|| ExecError::CyclicQuery(instance.query().to_string()))?;
        Self::build_with_tree(instance, tree)
    }

    /// Builds a context for an acyclic instance using the provided join tree (which
    /// must be a valid join tree of the instance's query).
    pub fn build_with_tree(instance: &Instance, tree: JoinTree) -> Result<Self> {
        let query = instance.query().clone();
        debug_assert!(tree.satisfies_running_intersection(&query));

        // 1. Materialize per-node tuples, dropping tuples that are internally
        //    inconsistent with repeated variables in the atom (e.g. R(x, x)).
        let mut nodes: Vec<NodeData> = Vec::with_capacity(tree.num_nodes());
        for node_id in 0..tree.num_nodes() {
            let atom_index = tree.node(node_id).atom_index;
            let atom = query.atom(atom_index);
            let relation = instance.relation_of_atom(atom_index);
            let tuples: Vec<Tuple> = relation
                .iter()
                .filter(|t| tuple_consistent_with_atom(t, atom))
                .cloned()
                .collect();

            let shared: Vec<Variable> = tree
                .shared_with_parent(&query, node_id)
                .into_iter()
                .collect();
            let own_key_positions: Vec<usize> =
                shared.iter().map(|v| atom.positions_of(v)[0]).collect();
            let parent_key_positions: Vec<usize> = match tree.node(node_id).parent {
                None => Vec::new(),
                Some(p) => {
                    let parent_atom = query.atom(tree.node(p).atom_index);
                    shared
                        .iter()
                        .map(|v| parent_atom.positions_of(v)[0])
                        .collect()
                }
            };

            nodes.push(NodeData {
                node_id,
                atom_index,
                tuples,
                shared_vars: shared,
                own_key_positions,
                parent_key_positions,
                groups: HashMap::new(),
            });
        }

        let mut ctx = JoinTreeContext { query, tree, nodes };

        // 2. Full reducer: bottom-up semi-joins (parents keep only tuples matched by
        //    every child), then top-down semi-joins (children keep only tuples matched
        //    by their reduced parent).
        for &node_id in &ctx.tree.bottom_up_order() {
            let children = ctx.tree.node(node_id).children.clone();
            for child in children {
                let child_keys: std::collections::HashSet<Vec<Value>> = ctx.nodes[child]
                    .tuples
                    .iter()
                    .map(|t| ctx.nodes[child].own_key(t))
                    .collect();
                let parent_key_positions = ctx.nodes[child].parent_key_positions.clone();
                ctx.nodes[node_id].tuples.retain(|t| {
                    let key: Vec<Value> =
                        parent_key_positions.iter().map(|&p| t[p].clone()).collect();
                    child_keys.contains(&key)
                });
            }
        }
        for &node_id in &ctx.tree.top_down_order() {
            let children = ctx.tree.node(node_id).children.clone();
            for child in children {
                let parent_keys: std::collections::HashSet<Vec<Value>> = ctx.nodes[node_id]
                    .tuples
                    .iter()
                    .map(|t| ctx.nodes[child].key_from_parent(t))
                    .collect();
                let own_key_positions = ctx.nodes[child].own_key_positions.clone();
                ctx.nodes[child].tuples.retain(|t| {
                    let key: Vec<Value> = own_key_positions.iter().map(|&p| t[p].clone()).collect();
                    parent_keys.contains(&key)
                });
            }
        }

        // 3. Group indexes for non-root nodes.
        for node in ctx.nodes.iter_mut() {
            if node.node_id == ctx.tree.root() {
                continue;
            }
            let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (i, t) in node.tuples.iter().enumerate() {
                groups.entry(node.own_key(t)).or_default().push(i);
            }
            node.groups = groups;
        }

        Ok(ctx)
    }

    /// The query this context evaluates.
    pub fn query(&self) -> &JoinQuery {
        &self.query
    }

    /// The join tree.
    pub fn tree(&self) -> &JoinTree {
        &self.tree
    }

    /// The root node id.
    pub fn root(&self) -> usize {
        self.tree.root()
    }

    /// Per-node data, indexed by node id.
    pub fn nodes(&self) -> &[NodeData] {
        &self.nodes
    }

    /// Data of one node.
    pub fn node(&self, id: usize) -> &NodeData {
        &self.nodes[id]
    }

    /// True if the query has no answers over the database (some node lost all tuples
    /// during reduction).
    pub fn has_no_answers(&self) -> bool {
        self.nodes.iter().any(|n| n.tuples.is_empty())
    }

    /// The indices of the tuples of `child` that join with the given parent tuple,
    /// together with the join key. Returns an empty slice if no tuple matches (which
    /// cannot happen for tuples that survived the full reducer).
    pub fn child_group(&self, child: usize, parent_tuple: &Tuple) -> &[usize] {
        let key = self.nodes[child].key_from_parent(parent_tuple);
        self.nodes[child]
            .groups
            .get(&key)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The partial assignment induced by one tuple of one node: the node's atom
    /// variables mapped to the tuple's values.
    pub fn partial_assignment(&self, node: usize, tuple_idx: usize) -> Assignment {
        let atom = self.query.atom(self.nodes[node].atom_index);
        let tuple = &self.nodes[node].tuples[tuple_idx];
        Assignment::from_pairs(
            atom.distinct_variable_positions()
                .into_iter()
                .map(|(v, pos)| (v, tuple[pos].clone())),
        )
    }

    /// Total number of tuples currently stored across all nodes (after reduction).
    pub fn total_tuples(&self) -> usize {
        self.nodes.iter().map(|n| n.tuples.len()).sum()
    }
}

/// True if the tuple assigns the same value to every occurrence of a repeated variable
/// in the atom.
fn tuple_consistent_with_atom(tuple: &Tuple, atom: &qjoin_query::Atom) -> bool {
    for (var, first_pos) in atom.distinct_variable_positions() {
        let positions = atom.positions_of(&var);
        if positions.iter().any(|&p| tuple[p] != tuple[first_pos]) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_data::{Database, Relation};
    use qjoin_query::query::{figure1_query, path_query};
    use qjoin_query::Atom;

    /// The database of Figure 1 of the paper.
    pub(crate) fn figure1_instance() -> Instance {
        let r = Relation::from_rows("R", &[&[1, 1], &[2, 2]]).unwrap();
        let s = Relation::from_rows("S", &[&[1, 3], &[1, 4], &[1, 5], &[2, 3], &[2, 4]]).unwrap();
        let t = Relation::from_rows("T", &[&[1, 6], &[1, 7], &[2, 6]]).unwrap();
        let u = Relation::from_rows("U", &[&[6, 8], &[6, 9], &[7, 9]]).unwrap();
        Instance::new(
            figure1_query(),
            Database::from_relations([r, s, t, u]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn context_builds_for_figure1() {
        let inst = figure1_instance();
        let ctx = JoinTreeContext::build(&inst).unwrap();
        assert_eq!(ctx.nodes().len(), 4);
        assert!(!ctx.has_no_answers());
        // No dangling tuples in Figure 1's database, so nothing is removed.
        assert_eq!(ctx.total_tuples(), inst.database_size());
    }

    #[test]
    fn cyclic_queries_are_rejected() {
        let mut db = Database::new();
        for name in ["R", "S", "T"] {
            db.add_relation(Relation::from_rows(name, &[&[1, 1]]).unwrap())
                .unwrap();
        }
        let inst = Instance::new(qjoin_query::query::triangle_query(), db).unwrap();
        assert!(matches!(
            JoinTreeContext::build(&inst).unwrap_err(),
            ExecError::CyclicQuery(_)
        ));
    }

    #[test]
    fn full_reducer_removes_dangling_tuples() {
        // R1(x1,x2) ⋈ R2(x2,x3): the R1 tuple with x2=99 has no partner and must go;
        // likewise the R2 tuple with x2=98.
        let r1 = Relation::from_rows("R1", &[&[1, 1], &[2, 99]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[1, 10], &[98, 20]]).unwrap();
        let inst =
            Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap();
        let ctx = JoinTreeContext::build(&inst).unwrap();
        assert_eq!(ctx.total_tuples(), 2);
        assert!(!ctx.has_no_answers());
    }

    #[test]
    fn full_reducer_propagates_emptiness() {
        // A 3-path where the middle relation shares no keys with the last one.
        let r1 = Relation::from_rows("R1", &[&[1, 1]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[1, 5]]).unwrap();
        let r3 = Relation::from_rows("R3", &[&[7, 2]]).unwrap();
        let inst = Instance::new(
            path_query(3),
            Database::from_relations([r1, r2, r3]).unwrap(),
        )
        .unwrap();
        let ctx = JoinTreeContext::build(&inst).unwrap();
        assert!(ctx.has_no_answers());
    }

    #[test]
    fn repeated_variable_atoms_filter_inconsistent_tuples() {
        // R(x, x): only tuples with equal components survive.
        let r = Relation::from_rows("R", &[&[1, 1], &[1, 2], &[3, 3]]).unwrap();
        let q = JoinQuery::new(vec![Atom::from_names("R", &["x", "x"])]);
        let inst = Instance::new(q, Database::from_relations([r]).unwrap()).unwrap();
        let ctx = JoinTreeContext::build(&inst).unwrap();
        assert_eq!(ctx.node(0).tuples.len(), 2);
    }

    #[test]
    fn join_groups_partition_child_tuples() {
        let inst = figure1_instance();
        let ctx = JoinTreeContext::build(&inst).unwrap();
        // Find the node materializing S(x1, x3): it is grouped by x1 and has two
        // groups of sizes 3 (x1=1) and 2 (x1=2).
        let s_node = ctx
            .nodes()
            .iter()
            .find(|n| ctx.query().atom(n.atom_index).relation() == "S")
            .unwrap();
        if s_node.node_id != ctx.root() {
            let mut sizes: Vec<usize> = s_node.groups.values().map(|g| g.len()).collect();
            sizes.sort_unstable();
            assert_eq!(sizes, vec![2, 3]);
        }
    }

    #[test]
    fn child_group_lookup_matches_parent_tuple() {
        let inst = figure1_instance();
        // Use the join tree drawn in Figure 1: R is the root, S and T its children,
        // U a child of T. (GYO is free to pick a different rooting.)
        let tree = qjoin_query::JoinTree::from_edges(4, &[(0, 1), (0, 2), (2, 3)], 0);
        let ctx = JoinTreeContext::build_with_tree(&inst, tree).unwrap();
        let u_node = ctx
            .nodes()
            .iter()
            .find(|n| ctx.query().atom(n.atom_index).relation() == "U")
            .unwrap();
        let parent = ctx.tree().node(u_node.node_id).parent.unwrap();
        let parent_data = ctx.node(parent);
        assert_eq!(ctx.query().atom(parent_data.atom_index).relation(), "T");
        // T tuple (1, 6) joins U tuples with x4 = 6: (6,8) and (6,9).
        let t_tuple = parent_data
            .tuples
            .iter()
            .find(|t| t.values() == [Value::from(1), Value::from(6)])
            .unwrap();
        let group = ctx.child_group(u_node.node_id, t_tuple);
        assert_eq!(group.len(), 2);
    }

    #[test]
    fn partial_assignment_binds_atom_variables() {
        let inst = figure1_instance();
        let ctx = JoinTreeContext::build(&inst).unwrap();
        let root = ctx.root();
        let asg = ctx.partial_assignment(root, 0);
        let atom = ctx.query().atom(ctx.node(root).atom_index);
        assert_eq!(asg.len(), atom.variable_set().len());
    }
}
