//! Encoded join-tree execution: semi-join reduction, counting, and enumeration over
//! dictionary codes.
//!
//! This is the encoded-path counterpart of [`JoinTreeContext`](crate::JoinTreeContext),
//! [`count`](crate::count), and [`yannakakis`](crate::yannakakis): the same
//! preprocessing (materialize per join-tree node, full reducer, join-group indexes)
//! and the same algorithms, but every join key is a small array of `u64` codes
//! ([`Key`]) read straight out of shared columns through selection vectors — no
//! [`Value`](qjoin_data::Value) hashing, no per-key `Tuple::project` allocation.
//! The join groups double as the pre-grouped adjacency indexes the counting and
//! pivoting passes walk, so the per-tuple work of one trim round is a handful of
//! integer hash lookups.
//!
//! Because the dictionary assigns codes in value order (and synthesized columns use
//! order-compatible code spaces), every answer, count, and group computed here equals
//! the row path's result exactly; the cross-crate equivalence suite asserts this.

use crate::{ExecError, Result};
use qjoin_query::{acyclicity, EncodedInstance, JoinQuery, JoinTree, Variable};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A join key: the codes of the variables shared with the parent node, in sorted
/// variable order. Most keys have one or two components; larger keys box a slice.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Key {
    /// The empty key (root nodes, cartesian products).
    Unit,
    /// A single-variable key.
    One(u64),
    /// A two-variable key.
    Two(u64, u64),
    /// Three or more components.
    Many(Box<[u64]>),
}

impl Key {
    /// Builds a key from its components.
    pub fn from_codes(codes: &[u64]) -> Key {
        match codes {
            [] => Key::Unit,
            [a] => Key::One(*a),
            [a, b] => Key::Two(*a, *b),
            more => Key::Many(more.into()),
        }
    }
}

/// A fast, deterministic hasher for dictionary-code join keys (the classic
/// multiply-rotate "Fx" scheme). The reducer and the answer walk hash a key per
/// row — millions per solve at benchmark scale — and SipHash's keyed security
/// buys nothing here: key maps are probed for membership and grouped in
/// canonical row order, never iterated in hash order, so an unkeyed
/// multiplicative hash changes nothing observable.
#[derive(Clone, Default)]
pub struct KeyHasher(u64);

impl KeyHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
}

impl std::hash::Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// A join-key map with the [`KeyHasher`].
pub type KeyMap<V> = HashMap<Key, V, std::hash::BuildHasherDefault<KeyHasher>>;
/// A join-key set with the [`KeyHasher`].
pub type KeySet = HashSet<Key, std::hash::BuildHasherDefault<KeyHasher>>;

/// Per-node state of an [`EncodedContext`].
#[derive(Clone, Debug)]
pub struct EncodedNode {
    /// The join-tree node id this data belongs to.
    pub node_id: usize,
    /// Index of the query atom materialized at this node.
    pub atom_index: usize,
    /// Surviving `(segment, row)` coordinates into the node's relation view, in view
    /// order, after the consistency filter and the full reducer.
    pub rows: Vec<(u32, u32)>,
    /// Positions of the variables shared with the parent within this node's atom
    /// (sorted variable order; empty for the root).
    pub own_key_positions: Vec<usize>,
    /// Positions of the same variables within the parent node's atom.
    pub parent_key_positions: Vec<usize>,
    /// Pre-grouped adjacency index: join key → indices into `rows`.
    pub groups: KeyMap<Vec<u32>>,
}

/// A rooted join tree with, per node, the semi-join reduced row set of an encoded
/// relation view and a code-valued join-group index.
#[derive(Clone, Debug)]
pub struct EncodedContext {
    query: JoinQuery,
    tree: JoinTree,
    nodes: Vec<EncodedNode>,
    rels: Vec<qjoin_data::EncodedRelation>,
}

impl EncodedContext {
    /// Builds a context for an acyclic encoded instance using its GYO join tree.
    pub fn build(instance: &EncodedInstance) -> Result<Self> {
        let tree = acyclicity::gyo_join_tree(instance.query())
            .ok_or_else(|| ExecError::CyclicQuery(instance.query().to_string()))?;
        Self::build_with_tree(instance, tree)
    }

    /// Builds a context using the provided join tree of the instance's query.
    pub fn build_with_tree(instance: &EncodedInstance, tree: JoinTree) -> Result<Self> {
        let query = instance.query().clone();
        debug_assert!(tree.satisfies_running_intersection(&query));

        let mut nodes: Vec<EncodedNode> = Vec::with_capacity(tree.num_nodes());
        let mut rels: Vec<qjoin_data::EncodedRelation> = Vec::with_capacity(tree.num_nodes());
        for node_id in 0..tree.num_nodes() {
            let atom_index = tree.node(node_id).atom_index;
            let atom = query.atom(atom_index);
            let rel = instance.relation_of_atom(atom_index).clone();

            // Repeated variables in the atom (e.g. R(x, x)) constrain matching rows.
            let repeated: Vec<Vec<usize>> = atom
                .distinct_variable_positions()
                .into_iter()
                .map(|(v, _)| atom.positions_of(&v))
                .filter(|p| p.len() > 1)
                .collect();
            let rows = consistent_coords(&rel, &repeated);

            let shared: Vec<Variable> = tree
                .shared_with_parent(&query, node_id)
                .into_iter()
                .collect();
            let own_key_positions: Vec<usize> =
                shared.iter().map(|v| atom.positions_of(v)[0]).collect();
            let parent_key_positions: Vec<usize> = match tree.node(node_id).parent {
                None => Vec::new(),
                Some(p) => {
                    let parent_atom = query.atom(tree.node(p).atom_index);
                    shared
                        .iter()
                        .map(|v| parent_atom.positions_of(v)[0])
                        .collect()
                }
            };

            nodes.push(EncodedNode {
                node_id,
                atom_index,
                rows,
                own_key_positions,
                parent_key_positions,
                groups: KeyMap::default(),
            });
            rels.push(rel);
        }

        let mut ctx = EncodedContext {
            query,
            tree,
            nodes,
            rels,
        };

        // Full reducer: bottom-up, then top-down semi-joins over code keys. The
        // key-set builds and survivor scans are chunked over the executor pool;
        // set membership is order-independent and survivors concatenate in
        // canonical chunk order, so the reduced row sets match the sequential
        // pass exactly.
        for &node_id in &ctx.tree.bottom_up_order() {
            let children = ctx.tree.node(node_id).children.clone();
            for child in children {
                let child_keys = key_set(|i| ctx.own_key(child, i), ctx.nodes[child].rows.len());
                let survivors = filter_rows(&ctx.nodes[node_id].rows, |i| {
                    child_keys.contains(&ctx.key_towards_child(node_id, child, i))
                });
                ctx.nodes[node_id].rows = survivors;
            }
        }
        for &node_id in &ctx.tree.top_down_order() {
            let children = ctx.tree.node(node_id).children.clone();
            for child in children {
                let parent_keys = key_set(
                    |i| ctx.key_towards_child(node_id, child, i),
                    ctx.nodes[node_id].rows.len(),
                );
                let survivors = filter_rows(&ctx.nodes[child].rows, |i| {
                    parent_keys.contains(&ctx.own_key(child, i))
                });
                ctx.nodes[child].rows = survivors;
            }
        }

        // Pre-grouped adjacency indexes for non-root nodes: chunk-local maps
        // merged in chunk order, so every group's member list stays ascending —
        // exactly what the sequential insertion produced.
        for node_id in 0..ctx.nodes.len() {
            if node_id == ctx.tree.root() {
                continue;
            }
            let chunk_maps: Vec<KeyMap<Vec<u32>>> = qjoin_par::par_map_chunks(
                ctx.nodes[node_id].rows.len(),
                qjoin_par::DEFAULT_CHUNK,
                |_, range| {
                    let mut local: KeyMap<Vec<u32>> = KeyMap::default();
                    for i in range {
                        local
                            .entry(ctx.own_key(node_id, i))
                            .or_default()
                            .push(i as u32);
                    }
                    local
                },
            );
            let mut groups: KeyMap<Vec<u32>> = KeyMap::default();
            for local in chunk_maps {
                for (key, members) in local {
                    groups.entry(key).or_default().extend(members);
                }
            }
            ctx.nodes[node_id].groups = groups;
        }

        Ok(ctx)
    }

    /// The query this context evaluates.
    pub fn query(&self) -> &JoinQuery {
        &self.query
    }

    /// The join tree.
    pub fn tree(&self) -> &JoinTree {
        &self.tree
    }

    /// The root node id.
    pub fn root(&self) -> usize {
        self.tree.root()
    }

    /// Per-node data, indexed by node id.
    pub fn nodes(&self) -> &[EncodedNode] {
        &self.nodes
    }

    /// Data of one node.
    pub fn node(&self, id: usize) -> &EncodedNode {
        &self.nodes[id]
    }

    /// The code of column `col` of row `i` (an index into the node's surviving rows).
    #[inline]
    pub fn code(&self, node: usize, i: usize, col: usize) -> u64 {
        let (seg, row) = self.nodes[node].rows[i];
        self.rels[node].code(seg as usize, row as usize, col)
    }

    /// The join key of row `i` of `node` towards its parent.
    pub fn own_key(&self, node: usize, i: usize) -> Key {
        let positions = &self.nodes[node].own_key_positions;
        self.key_from_positions(node, i, positions)
    }

    /// The join key that row `i` of `parent` exposes towards `child`.
    pub fn key_from_parent(&self, child: usize, parent_i: usize) -> Key {
        let parent = self
            .tree
            .node(child)
            .parent
            .expect("key_from_parent needs a non-root child");
        let positions = &self.nodes[child].parent_key_positions;
        self.key_from_positions(parent, parent_i, positions)
    }

    fn key_towards_child(&self, parent: usize, child: usize, parent_i: usize) -> Key {
        let positions = &self.nodes[child].parent_key_positions;
        self.key_from_positions(parent, parent_i, positions)
    }

    fn key_from_positions(&self, node: usize, i: usize, positions: &[usize]) -> Key {
        match positions {
            [] => Key::Unit,
            [a] => Key::One(self.code(node, i, *a)),
            [a, b] => Key::Two(self.code(node, i, *a), self.code(node, i, *b)),
            more => Key::Many(more.iter().map(|&p| self.code(node, i, p)).collect()),
        }
    }

    /// True if the query has no answers (some node lost all rows during reduction).
    pub fn has_no_answers(&self) -> bool {
        self.nodes.iter().any(|n| n.rows.is_empty())
    }

    /// The indices (into `child`'s rows) joining with the given key.
    pub fn child_group(&self, child: usize, key: &Key) -> &[u32] {
        self.nodes[child]
            .groups
            .get(key)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total surviving rows across all nodes.
    pub fn total_rows(&self) -> usize {
        self.nodes.iter().map(|n| n.rows.len()).sum()
    }
}

/// Scans a relation view in fixed-size chunks over the executor pool and
/// returns the `(segment, row)` coordinates whose repeated-variable positions
/// agree, in view order (partials concatenate in canonical chunk order).
fn consistent_coords(
    rel: &qjoin_data::EncodedRelation,
    repeated: &[Vec<usize>],
) -> Vec<(u32, u32)> {
    // Prefix offsets turn a global row index into (segment, row) coordinates.
    let mut offsets: Vec<usize> = Vec::with_capacity(rel.segments().len() + 1);
    let mut total = 0usize;
    offsets.push(0);
    for seg in rel.segments() {
        total += seg.len();
        offsets.push(total);
    }
    let parts: Vec<Vec<(u32, u32)>> =
        qjoin_par::par_map_chunks(total, qjoin_par::DEFAULT_CHUNK, |_, range| {
            let mut out = Vec::with_capacity(range.len());
            let mut seg = offsets.partition_point(|&o| o <= range.start) - 1;
            for idx in range {
                while idx >= offsets[seg + 1] {
                    seg += 1;
                }
                let row = idx - offsets[seg];
                let consistent = repeated.iter().all(|positions| {
                    let first = rel.code(seg, row, positions[0]);
                    positions[1..]
                        .iter()
                        .all(|&p| rel.code(seg, row, p) == first)
                });
                if consistent {
                    out.push((seg as u32, row as u32));
                }
            }
            out
        });
    let mut rows = Vec::with_capacity(total);
    for part in parts {
        rows.extend(part);
    }
    rows
}

/// Builds the set of join keys `key(0) .. key(n - 1)` with chunk-local sets
/// unioned afterwards (set membership is order-independent).
fn key_set(key: impl Fn(usize) -> Key + Sync, n: usize) -> KeySet {
    let parts: Vec<KeySet> = qjoin_par::par_map_chunks(n, qjoin_par::DEFAULT_CHUNK, |_, range| {
        range.map(&key).collect()
    });
    let mut keys = KeySet::default();
    for part in parts {
        keys.extend(part);
    }
    keys
}

/// Keeps the rows whose index satisfies `keep`, scanning in chunks and
/// concatenating survivors in canonical chunk order.
fn filter_rows(rows: &[(u32, u32)], keep: impl Fn(usize) -> bool + Sync) -> Vec<(u32, u32)> {
    let parts: Vec<Vec<(u32, u32)>> =
        qjoin_par::par_map_chunks(rows.len(), qjoin_par::DEFAULT_CHUNK, |_, range| {
            range.filter(|&i| keep(i)).map(|i| rows[i]).collect()
        });
    let mut survivors = Vec::with_capacity(rows.len());
    for part in parts {
        survivors.extend(part);
    }
    survivors
}

/// Per-tuple subtree answer counts of an encoded context, plus the per-group
/// aggregated messages (the encoded analogue of
/// [`count::subtree_counts`](crate::count::subtree_counts)).
#[derive(Clone, Debug)]
pub struct EncodedCounts {
    /// `per_tuple[node][i]` is the number of partial answers of the subtree rooted
    /// at row `i` of `node`.
    pub per_tuple: Vec<Vec<u128>>,
    /// `per_group[node]` maps a join key to the summed count of its group.
    pub per_group: Vec<KeyMap<u128>>,
}

/// Computes per-row subtree counts bottom-up (Example 2.1 of the paper).
pub fn subtree_counts(ctx: &EncodedContext) -> EncodedCounts {
    let n_nodes = ctx.nodes().len();
    let mut per_tuple: Vec<Vec<u128>> = vec![Vec::new(); n_nodes];
    let mut per_group: Vec<KeyMap<u128>> = vec![KeyMap::default(); n_nodes];

    for &node_id in &ctx.tree().bottom_up_order() {
        let children = ctx.tree().node(node_id).children.clone();
        let n_rows = ctx.node(node_id).rows.len();
        // Rows of one node are independent: chunk the per-row child-message
        // products over the executor pool. Concatenating the chunk partials in
        // canonical order reproduces the sequential per-tuple vector exactly
        // (the per-row products themselves are exact u128 arithmetic).
        let chunks: Vec<Vec<u128>> =
            qjoin_par::par_map_chunks(n_rows, qjoin_par::DEFAULT_CHUNK, |_, range| {
                range
                    .map(|i| {
                        let mut val: u128 = 1;
                        for &child in &children {
                            let key = ctx.key_from_parent(child, i);
                            // The parent row survived the full reducer iff a
                            // matching group exists in this child (wrapped in the
                            // same invariant as the row path's message passing).
                            let msg = per_group[child]
                                .get(&key)
                                .expect("full reducer guarantees a matching child group");
                            val = val.checked_mul(*msg).expect("answer count overflowed u128");
                        }
                        val
                    })
                    .collect()
            });
        let mut values: Vec<u128> = Vec::with_capacity(n_rows);
        for chunk in chunks {
            values.extend(chunk);
        }

        if node_id != ctx.root() {
            // Group sums are independent too; each sum folds its members in
            // ascending row order (exact integer arithmetic), so the aggregated
            // messages are identical at any thread count.
            let entries: Vec<(&Key, &Vec<u32>)> = ctx.node(node_id).groups.iter().collect();
            let sums: Vec<Vec<u128>> =
                qjoin_par::par_map_chunks(entries.len(), qjoin_par::DEFAULT_CHUNK, |_, range| {
                    range
                        .map(|g| entries[g].1.iter().map(|&i| values[i as usize]).sum())
                        .collect()
                });
            let mut groups: KeyMap<u128> =
                KeyMap::with_capacity_and_hasher(entries.len(), Default::default());
            let mut flat = sums.into_iter().flatten();
            for (key, _) in entries {
                groups.insert(key.clone(), flat.next().expect("one sum per group"));
            }
            per_group[node_id] = groups;
        }
        per_tuple[node_id] = values;
    }

    EncodedCounts {
        per_tuple,
        per_group,
    }
}

/// The number of answers `|Q(D)|` of the context's instance.
pub fn count_answers_ctx(ctx: &EncodedContext) -> u128 {
    if ctx.has_no_answers() {
        return 0;
    }
    let counts = subtree_counts(ctx);
    counts.per_tuple[ctx.root()].iter().sum()
}

/// The number of answers `|Q(D)|` of an acyclic encoded instance, in linear time.
pub fn count_answers(instance: &EncodedInstance) -> Result<u128> {
    let ctx = shared_context(instance)?;
    Ok(count_answers_ctx(&ctx))
}

/// The instance's default-tree [`EncodedContext`], built at most once per instance:
/// the first caller builds (GYO tree, semi-join reduction, group indexes) and parks
/// the result in the instance's [exec memo](EncodedInstance::exec_memo); later
/// callers — count, pivot scan, leaf materialization of the same solve — reuse it.
/// Clones share the memo, so the quantile driver's `instance.clone()` at the leaf
/// still hits the cache. Callers that need a *custom* join tree must use
/// [`EncodedContext::build_with_tree`] directly and bypass the memo.
pub fn shared_context(instance: &EncodedInstance) -> Result<Arc<EncodedContext>> {
    if let Some(ctx) = instance.exec_memo().get::<EncodedContext>() {
        return Ok(ctx);
    }
    let ctx = Arc::new(EncodedContext::build(instance)?);
    instance.exec_memo().set(Arc::clone(&ctx));
    Ok(ctx)
}

/// The per-enumeration scaffolding shared by the sequential and chunked answer
/// walks: the top-down node order, per-node code→answer-slot copy plans, and the
/// answer row width.
struct AnswerPlan {
    order: Vec<usize>,
    copy_plan: Vec<Vec<(usize, usize)>>,
    n_vars: usize,
}

fn answer_plan(ctx: &EncodedContext) -> AnswerPlan {
    let variables = ctx.query().variables();
    let var_positions: HashMap<Variable, usize> = variables
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    let copy_plan: Vec<Vec<(usize, usize)>> = ctx
        .nodes()
        .iter()
        .map(|n| {
            ctx.query()
                .atom(n.atom_index)
                .distinct_variable_positions()
                .into_iter()
                .map(|(v, atom_pos)| (atom_pos, var_positions[&v]))
                .collect()
        })
        .collect();
    AnswerPlan {
        order: ctx.tree().top_down_order().to_vec(),
        copy_plan,
        n_vars: variables.len(),
    }
}

/// Calls `f` once per query answer with the answer's codes laid out according to
/// `ctx.query().variables()` (the same schema order as the row path's
/// [`yannakakis::for_each_answer`](crate::yannakakis::for_each_answer)).
pub fn for_each_answer_codes(ctx: &EncodedContext, mut f: impl FnMut(&[u64])) {
    if ctx.has_no_answers() {
        return;
    }
    let plan = answer_plan(ctx);
    let mut selected: Vec<usize> = vec![0; ctx.nodes().len()];
    let mut row: Vec<u64> = vec![0; plan.n_vars];
    descend(
        ctx,
        &plan.order,
        0,
        &plan.copy_plan,
        &mut selected,
        &mut row,
        &mut f,
    );
}

/// Chunked answer enumeration for million-answer leaves: the root node's rows are
/// split into `chunk`-sized ranges over the executor pool; each range gets a fresh
/// accumulator from `make` and `per_answer` is invoked for every answer rooted in
/// the range. The accumulators come back in canonical chunk order, so
/// concatenating them yields exactly the answer sequence of
/// [`for_each_answer_codes`] — determinism comes from chunk order, not from how
/// chunks land on threads (the repo-wide parallelism discipline).
pub fn map_answer_code_chunks<T: Send>(
    ctx: &EncodedContext,
    chunk: usize,
    make: impl Fn() -> T + Sync,
    per_answer: impl Fn(&mut T, &[u64]) + Sync,
) -> Vec<T> {
    if ctx.has_no_answers() {
        return Vec::new();
    }
    let plan = answer_plan(ctx);
    let root = plan.order[0];
    let n_root = ctx.node(root).rows.len();
    qjoin_par::par_map_chunks(n_root, chunk, |_, range| {
        let mut acc = make();
        let mut selected: Vec<usize> = vec![0; ctx.nodes().len()];
        let mut row: Vec<u64> = vec![0; plan.n_vars];
        let mut emit = |r: &[u64]| per_answer(&mut acc, r);
        for i in range {
            visit(
                ctx,
                &plan.order,
                0,
                &plan.copy_plan,
                &mut selected,
                &mut row,
                &mut emit,
                root,
                i,
            );
        }
        acc
    })
}

#[allow(clippy::too_many_arguments)]
fn descend(
    ctx: &EncodedContext,
    order: &[usize],
    depth: usize,
    copy_plan: &[Vec<(usize, usize)>],
    selected: &mut Vec<usize>,
    row: &mut [u64],
    f: &mut impl FnMut(&[u64]),
) {
    if depth == order.len() {
        f(row);
        return;
    }
    let node = order[depth];
    // Iterate the candidate groups in place — cloning a group per visit would
    // allocate once per parent row, which dominates million-answer leaves.
    match ctx.tree().node(node).parent {
        None => {
            for i in 0..ctx.node(node).rows.len() {
                visit(ctx, order, depth, copy_plan, selected, row, f, node, i);
            }
        }
        Some(parent) => {
            let key = ctx.key_from_parent(node, selected[parent]);
            for &i in ctx.child_group(node, &key) {
                visit(
                    ctx, order, depth, copy_plan, selected, row, f, node, i as usize,
                );
            }
        }
    }
}

/// One candidate row of `descend`'s current node: copy its codes into the answer
/// row and recurse to the next node.
#[allow(clippy::too_many_arguments)]
#[inline]
fn visit(
    ctx: &EncodedContext,
    order: &[usize],
    depth: usize,
    copy_plan: &[Vec<(usize, usize)>],
    selected: &mut Vec<usize>,
    row: &mut [u64],
    f: &mut impl FnMut(&[u64]),
    node: usize,
    i: usize,
) {
    selected[node] = i;
    for &(atom_pos, row_pos) in &copy_plan[node] {
        row[row_pos] = ctx.code(node, i, atom_pos);
    }
    descend(ctx, order, depth + 1, copy_plan, selected, row, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count;
    use crate::yannakakis;
    use qjoin_data::{Database, Relation};
    use qjoin_query::query::{figure1_query, path_query};
    use qjoin_query::Instance;

    fn figure1_instance() -> Instance {
        let r = Relation::from_rows("R", &[&[1, 1], &[2, 2]]).unwrap();
        let s = Relation::from_rows("S", &[&[1, 3], &[1, 4], &[1, 5], &[2, 3], &[2, 4]]).unwrap();
        let t = Relation::from_rows("T", &[&[1, 6], &[1, 7], &[2, 6]]).unwrap();
        let u = Relation::from_rows("U", &[&[6, 8], &[6, 9], &[7, 9]]).unwrap();
        Instance::new(
            figure1_query(),
            Database::from_relations([r, s, t, u]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn encoded_count_matches_row_count() {
        let inst = figure1_instance();
        let enc = EncodedInstance::from_instance(&inst).unwrap();
        assert_eq!(
            count_answers(&enc).unwrap(),
            count::count_answers(&inst).unwrap()
        );
    }

    #[test]
    fn full_reducer_drops_the_same_rows() {
        let r1 = Relation::from_rows("R1", &[&[1, 1], &[2, 99]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[1, 10], &[98, 20]]).unwrap();
        let inst =
            Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap();
        let enc = EncodedInstance::from_instance(&inst).unwrap();
        let ctx = EncodedContext::build(&enc).unwrap();
        assert_eq!(ctx.total_rows(), 2);
        assert!(!ctx.has_no_answers());
    }

    #[test]
    fn emptiness_propagates() {
        let r1 = Relation::from_rows("R1", &[&[1, 1]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[2, 5]]).unwrap();
        let inst =
            Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap();
        let enc = EncodedInstance::from_instance(&inst).unwrap();
        assert!(EncodedContext::build(&enc).unwrap().has_no_answers());
        assert_eq!(count_answers(&enc).unwrap(), 0);
    }

    #[test]
    fn enumeration_decodes_to_the_row_answers() {
        let inst = figure1_instance();
        let enc = EncodedInstance::from_instance(&inst).unwrap();
        let ctx = EncodedContext::build(&enc).unwrap();
        let dict = enc.dictionary();
        let mut decoded: Vec<Vec<qjoin_data::Value>> = Vec::new();
        for_each_answer_codes(&ctx, |codes| {
            decoded.push(codes.iter().map(|&c| dict.decode(c).clone()).collect());
        });
        let row_answers = yannakakis::materialize(&inst).unwrap();
        let mut expected: Vec<Vec<qjoin_data::Value>> = row_answers.rows().to_vec();
        decoded.sort();
        expected.sort();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn repeated_variable_atoms_filter_by_code_equality() {
        let r = Relation::from_rows("R", &[&[1, 1], &[1, 2], &[3, 3]]).unwrap();
        let q = qjoin_query::JoinQuery::new(vec![qjoin_query::Atom::from_names("R", &["x", "x"])]);
        let inst = Instance::new(q, Database::from_relations([r]).unwrap()).unwrap();
        let enc = EncodedInstance::from_instance(&inst).unwrap();
        let ctx = EncodedContext::build(&enc).unwrap();
        assert_eq!(ctx.node(0).rows.len(), 2);
    }

    #[test]
    fn cyclic_queries_are_rejected() {
        let mut db = Database::new();
        for name in ["R", "S", "T"] {
            db.add_relation(Relation::from_rows(name, &[&[1, 1]]).unwrap())
                .unwrap();
        }
        let inst = Instance::new(qjoin_query::query::triangle_query(), db).unwrap();
        let enc = EncodedInstance::from_instance(&inst).unwrap();
        assert!(matches!(
            EncodedContext::build(&enc).unwrap_err(),
            ExecError::CyclicQuery(_)
        ));
    }

    #[test]
    fn keys_pack_small_arities() {
        assert_eq!(Key::from_codes(&[]), Key::Unit);
        assert_eq!(Key::from_codes(&[7]), Key::One(7));
        assert_eq!(Key::from_codes(&[7, 8]), Key::Two(7, 8));
        assert!(matches!(Key::from_codes(&[1, 2, 3]), Key::Many(_)));
    }
}
