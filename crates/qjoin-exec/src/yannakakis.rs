//! Yannakakis-style enumeration and materialization of acyclic join answers.
//!
//! After the full reducer has run (see [`JoinTreeContext`]), every remaining tuple
//! participates in at least one answer, so the answers can be enumerated with no
//! backtracking: walk the join tree in pre-order, and at each node iterate over the
//! join group selected by the already-chosen parent tuple. The total work is linear in
//! the input plus the output.
//!
//! The quantile driver (Algorithm 1 of the paper) only calls this once the candidate
//! set has shrunk to at most `n` answers; the brute-force baseline calls it on the full
//! instance and is deliberately output-sensitive.

use crate::{AnswerSet, JoinTreeContext, Result};
use qjoin_data::Value;
use qjoin_query::{Instance, Variable};
use std::collections::HashMap;

/// Calls `f` once per query answer with the answer's values laid out according to
/// `ctx.query().variables()`.
pub fn for_each_answer(ctx: &JoinTreeContext, mut f: impl FnMut(&[Value])) {
    if ctx.has_no_answers() {
        return;
    }
    let variables = ctx.query().variables();
    let var_positions: HashMap<Variable, usize> = variables
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    // Pre-compute, per node, the (atom position, row position) pairs to copy.
    let copy_plan: Vec<Vec<(usize, usize)>> = ctx
        .nodes()
        .iter()
        .map(|n| {
            ctx.query()
                .atom(n.atom_index)
                .distinct_variable_positions()
                .into_iter()
                .map(|(v, atom_pos)| (atom_pos, var_positions[&v]))
                .collect()
        })
        .collect();

    let order = ctx.tree().top_down_order();
    let mut selected: Vec<usize> = vec![0; ctx.nodes().len()];
    let mut row: Vec<Value> = vec![Value::Int(0); variables.len()];
    descend(ctx, &order, 0, &copy_plan, &mut selected, &mut row, &mut f);
}

#[allow(clippy::too_many_arguments)]
fn descend(
    ctx: &JoinTreeContext,
    order: &[usize],
    depth: usize,
    copy_plan: &[Vec<(usize, usize)>],
    selected: &mut Vec<usize>,
    row: &mut [Value],
    f: &mut impl FnMut(&[Value]),
) {
    if depth == order.len() {
        f(row);
        return;
    }
    let node = order[depth];
    let candidates: Vec<usize> = match ctx.tree().node(node).parent {
        None => (0..ctx.node(node).tuples.len()).collect(),
        Some(parent) => {
            let parent_tuple = &ctx.node(parent).tuples[selected[parent]];
            ctx.child_group(node, parent_tuple).to_vec()
        }
    };
    for tuple_idx in candidates {
        selected[node] = tuple_idx;
        let tuple = &ctx.node(node).tuples[tuple_idx];
        for &(atom_pos, row_pos) in &copy_plan[node] {
            row[row_pos] = tuple[atom_pos].clone();
        }
        descend(ctx, order, depth + 1, copy_plan, selected, row, f);
    }
}

/// Materializes all answers of the context into an [`AnswerSet`].
pub fn materialize_ctx(ctx: &JoinTreeContext) -> AnswerSet {
    let mut out = AnswerSet::new(ctx.query().variables());
    for_each_answer(ctx, |row| out.push_row(row.to_vec()));
    out
}

/// Materializes all answers of an acyclic instance.
///
/// The output can be as large as `n^ℓ`; this is the "direct way" of answering a
/// quantile query that the paper sets out to avoid, and it serves as the brute-force
/// baseline in the experiments.
pub fn materialize(instance: &Instance) -> Result<AnswerSet> {
    let ctx = JoinTreeContext::build(instance)?;
    Ok(materialize_ctx(&ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::count_answers;
    use qjoin_data::{Database, Relation};
    use qjoin_query::query::{figure1_query, path_query};
    use qjoin_query::{Atom, JoinQuery};
    use std::collections::{HashMap, HashSet};

    fn figure1_instance() -> Instance {
        let r = Relation::from_rows("R", &[&[1, 1], &[2, 2]]).unwrap();
        let s = Relation::from_rows("S", &[&[1, 3], &[1, 4], &[1, 5], &[2, 3], &[2, 4]]).unwrap();
        let t = Relation::from_rows("T", &[&[1, 6], &[1, 7], &[2, 6]]).unwrap();
        let u = Relation::from_rows("U", &[&[6, 8], &[6, 9], &[7, 9]]).unwrap();
        Instance::new(
            figure1_query(),
            Database::from_relations([r, s, t, u]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn materialization_size_matches_count() {
        let inst = figure1_instance();
        let answers = materialize(&inst).unwrap();
        assert_eq!(answers.len() as u128, count_answers(&inst).unwrap());
        assert_eq!(answers.len(), 13);
    }

    #[test]
    fn answers_are_distinct() {
        let inst = figure1_instance();
        let answers = materialize(&inst).unwrap();
        let distinct: HashSet<&Vec<Value>> = answers.rows().iter().collect();
        assert_eq!(distinct.len(), answers.len());
    }

    #[test]
    fn answers_satisfy_every_atom() {
        let inst = figure1_instance();
        let answers = materialize(&inst).unwrap();
        // Prebuilt membership sets, one per relation: checking every answer against
        // every atom is then linear in the output instead of quadratic (the same
        // scan-to-hash-set rewrite the full reducer applies in production).
        let membership: HashMap<&str, HashSet<&[Value]>> = inst
            .query()
            .atoms()
            .iter()
            .map(|atom| {
                let rel = inst.database().relation(atom.relation()).unwrap();
                (
                    atom.relation(),
                    rel.iter()
                        .map(|t| t.values())
                        .collect::<HashSet<&[Value]>>(),
                )
            })
            .collect();
        for assignment in answers.iter_assignments() {
            for atom in inst.query().atoms() {
                let projected: Vec<Value> = atom
                    .variables()
                    .iter()
                    .map(|v| assignment.get(v).unwrap().clone())
                    .collect();
                assert!(
                    membership[atom.relation()].contains(projected.as_slice()),
                    "answer {assignment:?} violates atom {atom}"
                );
            }
        }
    }

    #[test]
    fn empty_join_materializes_empty() {
        let r1 = Relation::from_rows("R1", &[&[1, 1]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[2, 5]]).unwrap();
        let inst =
            Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap();
        assert!(materialize(&inst).unwrap().is_empty());
    }

    #[test]
    fn binary_join_matches_nested_loop() {
        let r1_rows = [[1i64, 1], [1, 2], [2, 2], [3, 3]];
        let r2_rows = [[1i64, 10], [2, 20], [2, 30], [4, 40]];
        let mut expected: HashSet<(i64, i64, i64)> = HashSet::new();
        for a in &r1_rows {
            for b in &r2_rows {
                if a[1] == b[0] {
                    expected.insert((a[0], a[1], b[1]));
                }
            }
        }
        let r1_refs: Vec<&[i64]> = r1_rows.iter().map(|r| r.as_slice()).collect();
        let r2_refs: Vec<&[i64]> = r2_rows.iter().map(|r| r.as_slice()).collect();
        let inst = Instance::new(
            path_query(2),
            Database::from_relations([
                Relation::from_rows("R1", &r1_refs).unwrap(),
                Relation::from_rows("R2", &r2_refs).unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        let answers = materialize(&inst).unwrap();
        let got: HashSet<(i64, i64, i64)> = answers
            .rows()
            .iter()
            .map(|r| {
                (
                    r[0].as_int().unwrap(),
                    r[1].as_int().unwrap(),
                    r[2].as_int().unwrap(),
                )
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn cartesian_product_enumerates_all_pairs() {
        let a = Relation::from_rows("A", &[&[1], &[2]]).unwrap();
        let b = Relation::from_rows("B", &[&[10], &[20], &[30]]).unwrap();
        let q = JoinQuery::new(vec![
            Atom::from_names("A", &["x"]),
            Atom::from_names("B", &["y"]),
        ]);
        let inst = Instance::new(q, Database::from_relations([a, b]).unwrap()).unwrap();
        let answers = materialize(&inst).unwrap();
        assert_eq!(answers.len(), 6);
    }

    #[test]
    fn streaming_enumeration_counts_without_materializing() {
        let inst = figure1_instance();
        let ctx = JoinTreeContext::build(&inst).unwrap();
        let mut seen = 0usize;
        for_each_answer(&ctx, |_| seen += 1);
        assert_eq!(seen, 13);
    }
}
