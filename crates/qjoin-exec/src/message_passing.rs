//! The generic bottom-up message-passing framework of Section 2.4.
//!
//! Many algorithms over acyclic joins follow the same pattern: traverse a join tree
//! bottom-up, compute a value `val(t)` per tuple, aggregate values *within a join
//! group* with an operator `⊕`, and combine the aggregated child messages with the
//! tuple's own value using an operator `⊗`. Counting (Example 2.1), pivot selection
//! (Section 4), and the sketched sums of the lossy trimming (Section 6) are all
//! instances of this pattern; the first two are implemented directly on this trait.

use crate::{JoinTreeContext, NodeData};
use qjoin_data::Value;
use std::collections::HashMap;

/// An instantiation of the message-passing pattern.
///
/// Implementations provide the initial per-tuple value, the join-group combination
/// operator `⊕`, and the across-children absorption operator `⊗`.
pub trait MessageAlgebra {
    /// The message type `val(t)` computed per tuple.
    type Msg: Clone;

    /// The initial value of a tuple before any child messages arrive.
    fn tuple_init(&self, ctx: &JoinTreeContext, node: usize, tuple_idx: usize) -> Self::Msg;

    /// The `⊕` operator: combines the messages of all tuples in one join group of
    /// `node`. `group` holds `(tuple_index, message)` pairs, never empty.
    fn combine_group(
        &self,
        ctx: &JoinTreeContext,
        node: usize,
        group: &[(usize, Self::Msg)],
    ) -> Self::Msg;

    /// The `⊗` operator: absorbs one child join-group message into a tuple's value.
    fn absorb(
        &self,
        ctx: &JoinTreeContext,
        node: usize,
        tuple_idx: usize,
        own: Self::Msg,
        child_group_msg: &Self::Msg,
    ) -> Self::Msg;
}

/// The result of one bottom-up message-passing run.
#[derive(Clone, Debug)]
pub struct MessagePassingResult<M> {
    /// `per_tuple[node][i]` is the final value `val(t)` of tuple `i` of `node`.
    pub per_tuple: Vec<Vec<M>>,
    /// `per_group[node]` maps a join key of `node` to the `⊕`-combined message of the
    /// corresponding join group. Present for every non-root node.
    pub per_group: Vec<HashMap<Vec<Value>, M>>,
}

impl<M> MessagePassingResult<M> {
    /// The combined message a parent tuple receives from `child`, if its key matches
    /// any group (it always does for tuples that survived the full reducer).
    pub fn message_to_parent(
        &self,
        ctx: &JoinTreeContext,
        child: usize,
        parent_tuple: &qjoin_data::Tuple,
    ) -> Option<&M> {
        let key = ctx.node(child).key_from_parent(parent_tuple);
        self.per_group[child].get(&key)
    }
}

/// Runs the message-passing pattern bottom-up over the context with the given algebra.
pub fn run<A: MessageAlgebra>(ctx: &JoinTreeContext, algebra: &A) -> MessagePassingResult<A::Msg> {
    let n_nodes = ctx.nodes().len();
    let mut per_tuple: Vec<Vec<A::Msg>> = vec![Vec::new(); n_nodes];
    let mut per_group: Vec<HashMap<Vec<Value>, A::Msg>> = vec![HashMap::new(); n_nodes];

    for &node_id in &ctx.tree().bottom_up_order() {
        let node: &NodeData = ctx.node(node_id);
        let children = ctx.tree().node(node_id).children.clone();
        let mut values: Vec<A::Msg> = Vec::with_capacity(node.tuples.len());
        for (tuple_idx, tuple) in node.tuples.iter().enumerate() {
            let mut val = algebra.tuple_init(ctx, node_id, tuple_idx);
            for &child in &children {
                let key = ctx.node(child).key_from_parent(tuple);
                let msg = per_group[child].get(&key).expect(
                    "full reducer guarantees every parent tuple has a matching child group",
                );
                val = algebra.absorb(ctx, node_id, tuple_idx, val, msg);
            }
            values.push(val);
        }
        per_tuple[node_id] = values;

        // Compute the ⊕-combined message per join group of this node (not needed for
        // the root, which has no parent).
        if node_id != ctx.root() {
            let mut groups: HashMap<Vec<Value>, A::Msg> = HashMap::with_capacity(node.groups.len());
            for (key, members) in &node.groups {
                let member_msgs: Vec<(usize, A::Msg)> = members
                    .iter()
                    .map(|&i| (i, per_tuple[node_id][i].clone()))
                    .collect();
                groups.insert(
                    key.clone(),
                    algebra.combine_group(ctx, node_id, &member_msgs),
                );
            }
            per_group[node_id] = groups;
        }
    }

    MessagePassingResult {
        per_tuple,
        per_group,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::CountAlgebra;
    use qjoin_data::{Database, Relation};
    use qjoin_query::query::figure1_query;
    use qjoin_query::Instance;

    fn figure1_instance() -> Instance {
        let r = Relation::from_rows("R", &[&[1, 1], &[2, 2]]).unwrap();
        let s = Relation::from_rows("S", &[&[1, 3], &[1, 4], &[1, 5], &[2, 3], &[2, 4]]).unwrap();
        let t = Relation::from_rows("T", &[&[1, 6], &[1, 7], &[2, 6]]).unwrap();
        let u = Relation::from_rows("U", &[&[6, 8], &[6, 9], &[7, 9]]).unwrap();
        Instance::new(
            figure1_query(),
            Database::from_relations([r, s, t, u]).unwrap(),
        )
        .unwrap()
    }

    /// The context rooted exactly as in Figure 1: R is the root, S and T are its
    /// children, and U is a child of T.
    fn figure1_context() -> JoinTreeContext {
        let inst = figure1_instance();
        let tree = qjoin_query::JoinTree::from_edges(4, &[(0, 1), (0, 2), (2, 3)], 0);
        JoinTreeContext::build_with_tree(&inst, tree).unwrap()
    }

    #[test]
    fn count_algebra_reproduces_figure1_per_tuple_counts() {
        let ctx = figure1_context();
        let result = run(&ctx, &CountAlgebra);
        // Figure 1a annotates R(1,1) with count 9 and R(2,2) with count 4.
        let r_node = ctx
            .nodes()
            .iter()
            .find(|n| ctx.query().atom(n.atom_index).relation() == "R")
            .unwrap();
        let mut counts: Vec<u128> = result.per_tuple[r_node.node_id].clone();
        counts.sort_unstable();
        assert_eq!(counts, vec![4, 9]);
        // T(1,6) and T(2,6) have count 2; T(1,7) has count 1.
        let t_node = ctx
            .nodes()
            .iter()
            .find(|n| ctx.query().atom(n.atom_index).relation() == "T")
            .unwrap();
        let mut t_counts: Vec<u128> = result.per_tuple[t_node.node_id].clone();
        t_counts.sort_unstable();
        assert_eq!(t_counts, vec![1, 2, 2]);
    }

    #[test]
    fn group_messages_aggregate_with_sum() {
        let ctx = figure1_context();
        let result = run(&ctx, &CountAlgebra);
        // The S node is grouped by x1; the group x1=1 contains 3 tuples each with
        // count 1 → message 3, matching "1+1+1=3" in Figure 1b.
        let s_node = ctx
            .nodes()
            .iter()
            .find(|n| ctx.query().atom(n.atom_index).relation() == "S")
            .unwrap();
        if s_node.node_id != ctx.root() {
            let msg = result.per_group[s_node.node_id]
                .get(&vec![Value::from(1)])
                .copied();
            assert_eq!(msg, Some(3));
        }
    }

    #[test]
    fn message_to_parent_resolves_by_key() {
        let ctx = figure1_context();
        let result = run(&ctx, &CountAlgebra);
        let u_node = ctx
            .nodes()
            .iter()
            .find(|n| ctx.query().atom(n.atom_index).relation() == "U")
            .unwrap();
        let parent = ctx.tree().node(u_node.node_id).parent.unwrap();
        // T(2,6) receives the message 2 from U's group x4=6.
        let t_tuple = ctx
            .node(parent)
            .tuples
            .iter()
            .find(|t| t.values() == [Value::from(2), Value::from(6)])
            .unwrap();
        assert_eq!(
            result.message_to_parent(&ctx, u_node.node_id, t_tuple),
            Some(&2)
        );
    }
}
