//! # qjoin-exec
//!
//! Execution engine for acyclic join queries: the substrate on which the quantile
//! algorithms of `qjoin-core` are built. It implements the classical machinery the
//! paper relies on:
//!
//! * [`JoinTreeContext`] — a rooted join tree with, per node, the materialized and
//!   *semi-join reduced* relation plus join-group indexes (the preprocessing step of
//!   the message-passing pattern, Section 2.4).
//! * [`message_passing`] — the generic bottom-up message-passing framework with a
//!   group-combine operator `⊕` and an across-children operator `⊗`.
//! * [`count`] — linear-time counting of the answers to an acyclic JQ
//!   (Example 2.1 / Figure 1 of the paper).
//! * [`yannakakis`] — full answer enumeration and materialization (used by the
//!   quantile driver once few candidate answers remain, and by the brute-force
//!   baseline).
//! * [`DirectAccess`] — a linear-preprocessing, logarithmic-access index into the
//!   (unordered) answer list, which also provides uniform sampling; this is the
//!   structure behind the randomized approximation of Section 3.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod answer;
mod context;
pub mod count;
mod direct_access;
pub mod encoded;
mod error;
pub mod message_passing;
pub mod yannakakis;

pub use answer::AnswerSet;
pub use context::{JoinTreeContext, NodeData};
pub use direct_access::{DirectAccess, EncodedDirectAccess};
pub use encoded::{EncodedContext, EncodedNode, Key};
pub use error::ExecError;

/// Convenient `Result` alias for executor operations.
pub type Result<T> = std::result::Result<T, ExecError>;
