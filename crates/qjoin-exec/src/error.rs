//! Error types for the execution layer.

use std::fmt;

/// Errors raised by the join execution engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The query is cyclic; all algorithms in this crate require acyclic queries.
    CyclicQuery(String),
    /// An answer index is out of range for direct access.
    IndexOutOfRange {
        /// The requested index.
        requested: u128,
        /// The total number of answers.
        total: u128,
    },
    /// The query has no answers over the database, but one was required.
    NoAnswers,
    /// An underlying query-layer error.
    Query(qjoin_query::QueryError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::CyclicQuery(q) => write!(f, "query is cyclic: {q}"),
            ExecError::IndexOutOfRange { requested, total } => {
                write!(f, "answer index {requested} out of range (total {total})")
            }
            ExecError::NoAnswers => write!(f, "the query has no answers over this database"),
            ExecError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<qjoin_query::QueryError> for ExecError {
    fn from(e: qjoin_query::QueryError) -> Self {
        ExecError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ExecError::NoAnswers.to_string().contains("no answers"));
        let e = ExecError::IndexOutOfRange {
            requested: 10,
            total: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn query_errors_convert() {
        let e: ExecError = qjoin_query::QueryError::EmptyQuery.into();
        assert!(matches!(e, ExecError::Query(_)));
    }
}
