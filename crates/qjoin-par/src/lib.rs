//! # qjoin-par
//!
//! A std-only, vendored work-stealing chunk executor for the quantile-joins
//! workspace. The build environment has no access to crates.io, so this crate
//! plays the role rayon would otherwise play, with a deliberately small surface:
//!
//! * [`Pool`] — a fixed-size thread pool. A pool of `T` threads spawns `T - 1`
//!   worker threads; the thread that submits a parallel region always
//!   participates, so `T` is the true parallelism degree and `T = 1` spawns
//!   nothing and runs every region inline, purely sequentially.
//! * [`global`] — a lazily-initialized process-wide pool sized by the
//!   `QJOIN_THREADS` environment variable (falling back to
//!   `available_parallelism`).
//! * [`with_pool`] — scopes a pool as the calling thread's *current* pool;
//!   [`par_map`], [`par_map_chunks`], and [`par_join`] pick up the current pool
//!   so deep call stacks need no plumbed handle.
//!
//! ## Scheduling
//!
//! Each worker owns a deque. Workers pop their own deque LIFO (depth-first, so
//! nested regions stay cache-hot and bounded) and steal from other workers'
//! deques FIFO (breadth-first, so thieves take the oldest — largest — pending
//! work). Regions submitted from a non-worker thread go through a shared
//! injector queue, and the submitting thread helps execute until its region
//! drains. A worker that submits a nested region pushes the chunks onto its own
//! deque, where LIFO pop services them before anything else.
//!
//! ## Determinism
//!
//! Parallelism here never changes *what* is computed, only *where*:
//!
//! * chunk boundaries depend only on the input length and the requested chunk
//!   size — never on the thread count or on runtime timing;
//! * [`par_map`] and [`par_map_chunks`] return the per-chunk results as a `Vec`
//!   in canonical chunk order, so callers reduce partials in exactly the order
//!   the sequential loop would have used.
//!
//! A caller that folds the returned partials left-to-right therefore produces
//! bit-identical answers at every thread count, including `T = 1`.
//!
//! ## Panics
//!
//! A panic inside a chunk is caught on the executing thread, the region still
//! drains (no chunk is lost, no worker dies), and the first panic payload is
//! re-thrown on the submitting thread when the region completes.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Default rows-per-chunk used by callers that have no better domain-specific
/// number. Fixed (never derived from the thread count) so that chunk
/// decompositions — and therefore combine orders — are identical at any `T`.
pub const DEFAULT_CHUNK: usize = 1024;

// ---------------------------------------------------------------------------
// Run state: one parallel region
// ---------------------------------------------------------------------------

/// Type-erased state of one in-flight parallel region.
///
/// `payload` points at a typed payload living on the submitting thread's stack;
/// `exec` knows the concrete type and runs task `index` against it. The
/// submitting thread blocks in [`run_region`] until `remaining` reaches zero,
/// so `payload` strictly outlives every dereference. The `RunCore` itself is
/// reference-counted by the tasks, so a finishing worker may touch `done` /
/// `done_cv` even after the submitter has already moved on.
struct RunCore {
    exec: unsafe fn(*const (), usize),
    payload: *const (),
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `payload` is only dereferenced inside `exec`, which runs strictly
// before the `remaining` decrement that releases the blocked submitter, and the
// typed payloads only contain Sync state (the closure plus Mutex-guarded result
// slots). Everything else in RunCore is already thread-safe.
unsafe impl Send for RunCore {}
unsafe impl Sync for RunCore {}

impl RunCore {
    /// Executes task `index`, recording a panic instead of unwinding into the
    /// executor, and flips `done` when this was the last outstanding task.
    fn run_task(&self, index: usize) {
        let exec = self.exec;
        let payload = self.payload;
        // SAFETY: the submitter keeps `payload` alive until `remaining` hits
        // zero, which cannot happen before this call returns.
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { exec(payload, index) }));
        if let Err(cause) = outcome {
            let mut slot = lock(&self.panic);
            if slot.is_none() {
                *slot = Some(cause);
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = lock(&self.done);
            *done = true;
            self.done_cv.notify_all();
        }
    }
}

/// One schedulable unit: a region plus a task index within it.
#[derive(Clone)]
struct Task {
    core: Arc<RunCore>,
    index: usize,
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

/// State shared between a pool's workers and every submitting thread.
struct Shared {
    /// Parallelism degree (worker threads + the participating submitter).
    threads: usize,
    /// One deque per worker thread (`threads - 1` of them).
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Overflow queue for regions submitted from non-worker threads.
    injector: Mutex<VecDeque<Task>>,
    /// Wake generation: bumped (with `wake_cv` notified) on every submission.
    wake: Mutex<u64>,
    wake_cv: Condvar,
    shutdown: AtomicBool,
    /// Tasks executed, by anyone (workers and helping submitters).
    tasks: AtomicU64,
    /// Tasks taken from another worker's deque.
    steals: AtomicU64,
}

/// Locks a mutex, shrugging off poisoning (chunk panics are already contained
/// by `catch_unwind`; a poisoned flag must not wedge the executor).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Finds a task: own deque LIFO first (workers only), then the injector FIFO,
/// then a FIFO steal sweep over the other workers' deques.
fn find_task(shared: &Shared, me: Option<usize>) -> Option<Task> {
    if let Some(i) = me {
        if let Some(task) = lock(&shared.deques[i]).pop_back() {
            return Some(task);
        }
    }
    if let Some(task) = lock(&shared.injector).pop_front() {
        return Some(task);
    }
    let n = shared.deques.len();
    let start = me.map_or(0, |i| i + 1);
    for k in 0..n {
        let j = (start + k) % n;
        if Some(j) == me {
            continue;
        }
        if let Some(task) = lock(&shared.deques[j]).pop_front() {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            return Some(task);
        }
    }
    None
}

fn execute(shared: &Shared, task: Task) {
    shared.tasks.fetch_add(1, Ordering::Relaxed);
    task.core.run_task(task.index);
}

fn worker_main(shared: Arc<Shared>, me: usize) {
    CURRENT.with(|current| *current.borrow_mut() = Some(Arc::clone(&shared)));
    WORKER.with(|worker| worker.set(Some((Arc::as_ptr(&shared) as usize, me))));
    loop {
        // Read the wake generation *before* scanning, so a submission that
        // lands between the scan and the wait bumps the generation and the
        // wait below falls straight through (no lost wakeup).
        let gen = *lock(&shared.wake);
        if let Some(task) = find_task(&shared, Some(me)) {
            execute(&shared, task);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut guard = lock(&shared.wake);
        while *guard == gen && !shared.shutdown.load(Ordering::Acquire) {
            guard = shared
                .wake_cv
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Submits `count` tasks for `core` and blocks until the region drains,
/// helping execute tasks (its own and anyone else's) while it waits. Re-throws
/// the region's first chunk panic, if any.
fn run_region(shared: &Arc<Shared>, core: Arc<RunCore>, count: usize) {
    let me = worker_index(shared);
    match me {
        // Worker thread: push onto our own deque; LIFO pop drains the nested
        // region depth-first before anything older.
        Some(i) => {
            let mut deque = lock(&shared.deques[i]);
            for index in 0..count {
                deque.push_back(Task {
                    core: Arc::clone(&core),
                    index,
                });
            }
        }
        // Foreign thread: go through the shared injector.
        None => {
            let mut injector = lock(&shared.injector);
            for index in 0..count {
                injector.push_back(Task {
                    core: Arc::clone(&core),
                    index,
                });
            }
        }
    }
    {
        let mut gen = lock(&shared.wake);
        *gen = gen.wrapping_add(1);
        shared.wake_cv.notify_all();
    }
    loop {
        if core.remaining.load(Ordering::Acquire) == 0 {
            break;
        }
        if let Some(task) = find_task(shared, me) {
            execute(shared, task);
            continue;
        }
        // Nothing takeable anywhere: every remaining task of our region is
        // being executed by some other thread, so park until the last one
        // flips `done`. (Tasks are never re-queued, so no new work for this
        // region can appear while we wait.)
        let mut done = lock(&core.done);
        while !*done {
            done = core.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
        break;
    }
    let panic = lock(&core.panic).take();
    if let Some(cause) = panic {
        resume_unwind(cause);
    }
}

// ---------------------------------------------------------------------------
// Pool handle, global pool, current-pool scoping
// ---------------------------------------------------------------------------

/// A fixed-size work-stealing thread pool.
///
/// Dropping a `Pool` shuts its workers down and joins them; in-flight regions
/// complete first because every submitter blocks inside its own region.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.shared.threads)
            .finish_non_exhaustive()
    }
}

/// Executor counters, exposed for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallelism degree of the pool.
    pub threads: usize,
    /// Tasks executed (by workers and by helping submitters).
    pub tasks: u64,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
}

impl Pool {
    /// Creates a pool with parallelism degree `threads` (clamped to at least
    /// 1). `threads - 1` worker threads are spawned; `threads = 1` spawns
    /// nothing and every parallel surface runs inline, purely sequentially.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            threads,
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            wake: Mutex::new(0),
            wake_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qjoin-par-{i}"))
                    .spawn(move || worker_main(shared, i))
                    .expect("qjoin-par: cannot spawn worker thread")
            })
            .collect();
        Pool { shared, workers }
    }

    /// The pool's parallelism degree.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Snapshot of the executor counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.shared.threads,
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let mut gen = lock(&self.shared.wake);
            *gen = gen.wrapping_add(1);
            self.shared.wake_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

thread_local! {
    /// The pool parallel surfaces submit to, when scoped via [`with_pool`] (or
    /// permanently, for worker threads).
    static CURRENT: RefCell<Option<Arc<Shared>>> = const { RefCell::new(None) };
    /// `(pool identity, worker index)` for pool worker threads.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
    /// Nanoseconds this thread has spent submitting pool-executed regions.
    static PAR_NANOS: Cell<u64> = const { Cell::new(0) };
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool, created on first use with [`default_threads`] threads.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(default_threads()))
}

/// The parallelism degree requested by the environment: `QJOIN_THREADS` if set
/// to a positive integer, otherwise `std::thread::available_parallelism()`.
pub fn default_threads() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    match std::env::var("QJOIN_THREADS") {
        Ok(raw) => raw
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(fallback),
        Err(_) => fallback(),
    }
}

/// Runs `f` with `pool` as the calling thread's current pool, restoring the
/// previous scope afterwards (also on unwind).
pub fn with_pool<R>(pool: &Pool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<Shared>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.0.take();
            CURRENT.with(|current| *current.borrow_mut() = previous);
        }
    }
    let previous = CURRENT.with(|current| current.borrow_mut().replace(Arc::clone(&pool.shared)));
    let _restore = Restore(previous);
    f()
}

fn current_shared() -> Arc<Shared> {
    if let Some(shared) = CURRENT.with(|current| current.borrow().clone()) {
        return shared;
    }
    Arc::clone(&global().shared)
}

/// The current pool's parallelism degree (1 means parallel surfaces run inline).
pub fn current_threads() -> usize {
    current_shared().threads
}

/// Counters of the current pool (the scoped pool, or the global one).
pub fn current_stats() -> PoolStats {
    let shared = current_shared();
    PoolStats {
        threads: shared.threads,
        tasks: shared.tasks.load(Ordering::Relaxed),
        steals: shared.steals.load(Ordering::Relaxed),
    }
}

/// Total nanoseconds this thread has spent inside pool-executed parallel
/// regions ([`par_map`]/[`par_map_chunks`]/[`par_join`] calls that actually
/// went through a pool — inline sequential fallbacks do not count). Monotone
/// non-decreasing; sample before and after a section to attribute time to it.
pub fn thread_parallel_nanos() -> u64 {
    PAR_NANOS.with(Cell::get)
}

/// `Some(index)` when the calling thread is a worker of `shared`.
fn worker_index(shared: &Arc<Shared>) -> Option<usize> {
    let (pool, index) = WORKER.with(Cell::get)?;
    (pool == Arc::as_ptr(shared) as usize).then_some(index)
}

fn add_parallel_nanos(start: Instant) {
    let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    PAR_NANOS.with(|cell| cell.set(cell.get().saturating_add(nanos)));
}

// ---------------------------------------------------------------------------
// Parallel surfaces
// ---------------------------------------------------------------------------

struct MapPayload<T, F> {
    f: F,
    slots: Vec<Mutex<Option<T>>>,
}

/// # Safety
/// `payload` must point at a live `MapPayload<T, F>` whose `slots` has more
/// than `index` entries.
unsafe fn exec_map<T, F: Fn(usize) -> T>(payload: *const (), index: usize) {
    // SAFETY: per this function's contract; upheld by `par_map`, which passes a
    // matching payload and blocks until the region drains.
    let payload = unsafe { &*payload.cast::<MapPayload<T, F>>() };
    let value = (payload.f)(index);
    *lock(&payload.slots[index]) = Some(value);
}

/// Computes `f(0) .. f(n - 1)` on the current pool and returns the results in
/// index order — the canonical order a sequential loop would have produced, so
/// left-to-right folds over the result are deterministic at any thread count.
///
/// Runs inline (no pool machinery at all) when the current pool has one thread
/// or `n <= 1`.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let shared = current_shared();
    if shared.threads <= 1 || n == 1 {
        return (0..n).map(f).collect();
    }
    let start = Instant::now();
    let payload = MapPayload {
        f,
        slots: (0..n).map(|_| Mutex::new(None)).collect::<Vec<_>>(),
    };
    let core = Arc::new(RunCore {
        exec: exec_map::<T, F>,
        payload: (&payload as *const MapPayload<T, F>).cast(),
        remaining: AtomicUsize::new(n),
        panic: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    run_region(&shared, core, n);
    add_parallel_nanos(start);
    payload
        .slots
        .into_iter()
        .map(|slot| {
            lock(&slot)
                .take()
                .expect("qjoin-par: chunk completed without a result")
        })
        .collect()
}

/// Splits `0..len` into chunks of `chunk` indices (the last one short) and maps
/// `f(chunk_index, range)` over them in parallel, returning per-chunk results
/// in canonical chunk order.
///
/// Chunk boundaries depend only on `len` and `chunk` — never on the thread
/// count — so the decomposition (and any in-order fold of the partials) is
/// identical at every `T`.
pub fn par_map_chunks<T, F>(len: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let chunk = chunk.max(1);
    let chunks = len.div_ceil(chunk);
    par_map(chunks, move |i| {
        let lo = i * chunk;
        f(i, lo..((lo + chunk).min(len)))
    })
}

struct JoinPayload<A, B, RA, RB> {
    a: Mutex<Option<A>>,
    b: Mutex<Option<B>>,
    ra: Mutex<Option<RA>>,
    rb: Mutex<Option<RB>>,
}

/// # Safety
/// `payload` must point at a live `JoinPayload<A, B, RA, RB>`; `index` must be
/// 0 or 1, each presented at most once.
unsafe fn exec_join<A, B, RA, RB>(payload: *const (), index: usize)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    // SAFETY: per this function's contract; upheld by `par_join`.
    let payload = unsafe { &*payload.cast::<JoinPayload<A, B, RA, RB>>() };
    if index == 0 {
        let f = lock(&payload.a)
            .take()
            .expect("qjoin-par: join task 0 reran");
        let value = f();
        *lock(&payload.ra) = Some(value);
    } else {
        let f = lock(&payload.b)
            .take()
            .expect("qjoin-par: join task 1 reran");
        let value = f();
        *lock(&payload.rb) = Some(value);
    }
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
/// Sequential (`(a(), b())`, in that order) when the current pool has one
/// thread.
pub fn par_join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let shared = current_shared();
    if shared.threads <= 1 {
        return (a(), b());
    }
    let start = Instant::now();
    let payload = JoinPayload {
        a: Mutex::new(Some(a)),
        b: Mutex::new(Some(b)),
        ra: Mutex::new(None),
        rb: Mutex::new(None),
    };
    let core = Arc::new(RunCore {
        exec: exec_join::<A, B, RA, RB>,
        payload: (&payload as *const JoinPayload<A, B, RA, RB>).cast(),
        remaining: AtomicUsize::new(2),
        panic: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    run_region(&shared, core, 2);
    add_parallel_nanos(start);
    let ra = lock(&payload.ra)
        .take()
        .expect("qjoin-par: join arm 0 completed without a result");
    let rb = lock(&payload.rb)
        .take()
        .expect("qjoin-par: join arm 1 completed without a result");
    (ra, rb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn sequential_pool_runs_inline_on_the_calling_thread() {
        let pool = Pool::new(1);
        let caller = std::thread::current().id();
        let ids = with_pool(&pool, || par_map(8, |_| std::thread::current().id()));
        assert!(ids.iter().all(|id| *id == caller));
        let (x, y) = with_pool(&pool, || par_join(|| 1 + 1, || 2 + 2));
        assert_eq!((x, y), (2, 4));
        // Purely sequential: the pool machinery was never touched.
        assert_eq!(pool.stats().tasks, 0);
        assert_eq!(pool.stats().steals, 0);
    }

    #[test]
    fn map_results_are_in_canonical_order_at_every_thread_count() {
        let expected: Vec<usize> = (0..1000).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let got = with_pool(&pool, || par_map(1000, |i| i * 3 + 1));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn chunk_boundaries_depend_only_on_len_and_chunk() {
        let mut seen = Vec::new();
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let ranges = with_pool(&pool, || par_map_chunks(2500, 1024, |i, range| (i, range)));
            seen.push(ranges);
        }
        assert_eq!(seen[0], seen[1]);
        assert_eq!(
            seen[0],
            vec![(0, 0..1024), (1, 1024..2048), (2, 2048..2500)]
        );
    }

    #[test]
    fn no_lost_chunks_under_contention() {
        let pool = Arc::new(Pool::new(4));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for round in 0..20 {
                        let base = t * 1000 + round;
                        let got = with_pool(&pool, || par_map(257, move |i| base + i));
                        let expected: Vec<usize> = (0..257).map(|i| base + i).collect();
                        assert_eq!(got, expected);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        // 8 threads x 20 rounds x 257 chunks, every one accounted for.
        assert_eq!(pool.stats().tasks, 8 * 20 * 257);
    }

    #[test]
    fn nested_maps_complete() {
        let pool = Pool::new(4);
        let got = with_pool(&pool, || {
            par_map(6, |i| {
                par_map(50, move |j| i * 50 + j).iter().sum::<usize>()
            })
        });
        let expected: Vec<usize> = (0..6).map(|i| (0..50).map(|j| i * 50 + j).sum()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn par_join_runs_both_arms_and_nests() {
        let pool = Pool::new(4);
        let (a, b) = with_pool(&pool, || {
            par_join(
                || par_map(100, |i| i as u64).iter().sum::<u64>(),
                || par_map(100, |i| (i as u64) * 2).iter().sum::<u64>(),
            )
        });
        assert_eq!(a, 4950);
        assert_eq!(b, 9900);
    }

    #[test]
    fn chunk_panic_propagates_and_the_pool_survives() {
        let pool = Pool::new(4);
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            with_pool(&pool, || {
                par_map(64, |i| {
                    if i == 33 {
                        panic!("chunk 33 exploded");
                    }
                    i
                })
            })
        }));
        let cause = attempt.expect_err("the chunk panic must propagate");
        let message = cause
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_else(|| cause.downcast_ref::<String>().unwrap().as_str());
        assert!(message.contains("chunk 33 exploded"));
        // No worker died with the panicking chunk: the pool still works.
        let got = with_pool(&pool, || par_map(100, |i| i + 1));
        assert_eq!(got, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn join_arm_panic_propagates() {
        let pool = Pool::new(2);
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            with_pool(&pool, || {
                par_join(|| 7, || -> u32 { panic!("arm b exploded") })
            })
        }));
        assert!(attempt.is_err());
        let (x, y) = with_pool(&pool, || par_join(|| 1, || 2));
        assert_eq!((x, y), (1, 2));
    }

    /// Drives the deque discipline directly (no timing dependence): local pops
    /// are LIFO, steals are FIFO and counted.
    #[test]
    fn local_pop_is_lifo_and_steals_are_fifo_and_counted() {
        let shared = Arc::new(Shared {
            threads: 3,
            deques: (0..2).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            wake: Mutex::new(0),
            wake_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });
        unsafe fn noop(_: *const (), _: usize) {}
        let core = Arc::new(RunCore {
            exec: noop,
            payload: std::ptr::null(),
            remaining: AtomicUsize::new(4),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        for index in 0..4 {
            lock(&shared.deques[0]).push_back(Task {
                core: Arc::clone(&core),
                index,
            });
        }
        // Owner (worker 0) pops its own deque LIFO: newest chunk first.
        assert_eq!(find_task(&shared, Some(0)).unwrap().index, 3);
        assert_eq!(shared.steals.load(Ordering::Relaxed), 0);
        // A thief (worker 1) steals FIFO: oldest chunk first, and it counts.
        assert_eq!(find_task(&shared, Some(1)).unwrap().index, 0);
        assert_eq!(shared.steals.load(Ordering::Relaxed), 1);
        // A non-worker submitter helping out also steals FIFO.
        assert_eq!(find_task(&shared, None).unwrap().index, 1);
        assert_eq!(shared.steals.load(Ordering::Relaxed), 2);
        // Owner again: LIFO of what's left.
        assert_eq!(find_task(&shared, Some(0)).unwrap().index, 2);
        assert_eq!(shared.steals.load(Ordering::Relaxed), 2);
        assert!(find_task(&shared, Some(0)).is_none());
    }

    #[test]
    fn parallel_nanos_accumulate_only_for_pool_executed_regions() {
        let before = thread_parallel_nanos();
        let sequential = Pool::new(1);
        with_pool(&sequential, || par_map(512, |i| i));
        assert_eq!(thread_parallel_nanos(), before);
        let pool = Pool::new(2);
        with_pool(&pool, || par_map(512, |i| i));
        assert!(thread_parallel_nanos() > before);
    }

    #[test]
    fn with_pool_scopes_and_restores() {
        let a = Pool::new(3);
        let b = Pool::new(2);
        with_pool(&a, || {
            assert_eq!(current_threads(), 3);
            with_pool(&b, || assert_eq!(current_threads(), 2));
            assert_eq!(current_threads(), 3);
        });
    }

    #[test]
    fn dropping_a_pool_joins_idle_workers() {
        let pool = Pool::new(4);
        let counter = AtomicU32::new(0);
        with_pool(&pool, || {
            par_map(32, |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        drop(pool); // must not hang
    }
}
