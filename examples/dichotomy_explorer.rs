//! Explores the partial-SUM dichotomy (Theorem 5.6) on a catalogue of queries.
//!
//! For each query and choice of weighted variables the program prints whether the
//! exact quantile problem is quasilinear, and if not, which witness (cyclicity, an
//! independent triple, or a long chordless path) certifies hardness.
//!
//! Run with `cargo run --example dichotomy_explorer`.

use quantile_joins::prelude::*;

fn main() {
    let cases: Vec<(&str, JoinQuery, Vec<Variable>)> = vec![
        ("2-path, full SUM", path_query(2), path_query(2).variables()),
        ("3-path, full SUM", path_query(3), path_query(3).variables()),
        (
            "3-path, SUM(x1,x2,x3)",
            path_query(3),
            vars(&["x1", "x2", "x3"]),
        ),
        ("3-path, SUM(x2,x3)", path_query(3), vars(&["x2", "x3"])),
        ("4-path, SUM(x1,x5)", path_query(4), vars(&["x1", "x5"])),
        (
            "star-3, SUM(leaves)",
            star_query(3),
            vars(&["x1", "x2", "x3"]),
        ),
        ("star-3, SUM(x1,x2)", star_query(3), vars(&["x1", "x2"])),
        (
            "social network, SUM(l2,l3)",
            social_network_query(),
            vars(&["l2", "l3"]),
        ),
        (
            "triangle (cyclic), full SUM",
            quantile_joins::query::query::triangle_query(),
            quantile_joins::query::query::triangle_query().variables(),
        ),
    ];

    println!(
        "{:<30} {:>12}   witness / cover",
        "query, ranking", "tractable?"
    );
    for (label, query, weighted) in cases {
        let classification = classify_partial_sum(&query, &weighted);
        let tractable = if classification.is_tractable() {
            "yes"
        } else {
            "NO"
        };
        let detail = match &classification {
            SumClassification::TractableSingleAtom { atom } => {
                format!("all weighted variables in atom {}", query.atom(*atom))
            }
            SumClassification::TractableAdjacentPair { atoms } => format!(
                "adjacent cover {} + {}",
                query.atom(atoms.0),
                query.atom(atoms.1)
            ),
            SumClassification::IntractableCyclic => "query hypergraph is cyclic".to_string(),
            SumClassification::IntractableIndependentSet(witness) => {
                format!("independent triple {witness:?}")
            }
            SumClassification::IntractableChordlessPath(path) => {
                format!("chordless path {path:?}")
            }
            SumClassification::UnknownTooLarge => "query too large for exhaustive search".into(),
        };
        println!("{label:<30} {tractable:>12}   {detail}");
    }
    println!("\nIntractable cases remain answerable with the deterministic ε-approximation");
    println!("(Theorem 6.2) or with sampling (Section 3.1).");
}
