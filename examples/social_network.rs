//! The motivating example of the paper's introduction: a social network with
//! `Admin(u1, e), Share(u2, e, l2), Attend(u3, e, l3)`, asked for the 0.1-quantile of
//! the join ordered by `l2 + l3`.
//!
//! The join output is orders of magnitude larger than the database, yet the pivoting
//! algorithm answers the quantile query while touching only quasilinear amounts of
//! data; the brute-force baseline materializes everything. The example prints both
//! timings side by side for growing database sizes.
//!
//! Run with `cargo run --release --example social_network`.

use quantile_joins::prelude::*;
use std::time::Instant;

fn main() {
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>12} {:>8}",
        "db tuples", "join answers", "0.1-quantile", "pivoting", "baseline", "agree"
    );
    for rows in [500usize, 1_000, 2_000, 4_000] {
        let config = SocialConfig {
            rows_per_relation: rows,
            users: rows,
            events: (rows / 5).max(1),
            max_likes: 1_000,
            event_skew: 0.5,
            seed: 2023,
        };
        let instance = config.generate();
        let ranking = config.likes_ranking();

        let started = Instant::now();
        let fast = exact_quantile(&instance, &ranking, 0.1).unwrap();
        let pivoting_time = started.elapsed();

        let started = Instant::now();
        let slow =
            quantile_by_materialization(&instance, &ranking, 0.1, BaselineStrategy::Selection)
                .unwrap();
        let baseline_time = started.elapsed();

        println!(
            "{:>10} {:>14} {:>14} {:>12.2?} {:>12.2?} {:>8}",
            instance.database_size(),
            fast.total_answers,
            fast.weight.to_string(),
            pivoting_time,
            baseline_time,
            fast.weight == slow.weight
        );
    }
    println!("\nThe pivoting column grows with the database size; the baseline column grows");
    println!("with the (much larger) number of join answers — the gap is the whole point of");
    println!("the paper.");
}
