//! Deterministic vs randomized approximation on an exactly-intractable query.
//!
//! The 3-path join ranked by the **full** SUM of its variables is on the negative side
//! of the dichotomy (Theorem 5.6): no quasilinear exact algorithm exists under 3SUM.
//! The paper's answer is an ε-approximate quantile. This example runs
//!
//! * the deterministic pivoting algorithm with ε-lossy trimmings (Theorem 6.2),
//! * the randomized sampling algorithm (Section 3.1), and
//! * the exact brute-force baseline (for the ground truth),
//!
//! and reports each answer's true rank error.
//!
//! Run with `cargo run --release --example approximate_median`.

use quantile_joins::core::quantile::rank_of_weight;
use quantile_joins::core::sampling::{quantile_by_sampling, SamplingOptions};
use quantile_joins::prelude::*;

fn main() {
    let config = PathConfig {
        atoms: 3,
        tuples_per_relation: 600,
        join_domain: 40,
        weight_range: 1_000,
        skew: 0.3,
        seed: 99,
    };
    let instance = config.generate();
    let ranking = Ranking::sum(instance.query().variables());
    let phi = 0.5;
    let total = count_answers(&instance).unwrap();
    println!("query        : {}", instance.query());
    println!("database     : {} tuples", instance.database_size());
    println!("join answers : {total}");
    println!("ranking      : {ranking} (intractable exactly — Theorem 5.6)\n");

    let truth =
        quantile_by_materialization(&instance, &ranking, phi, BaselineStrategy::Selection).unwrap();
    println!("exact median (brute force): weight {}", truth.weight);

    println!(
        "\n{:>22} {:>14} {:>16} {:>14}",
        "algorithm", "weight", "rank error", "rel. error"
    );
    report(&instance, &ranking, phi, "baseline", &truth);

    for epsilon in [0.25, 0.1, 0.05] {
        let approx =
            approximate_sum_quantile(&instance, &ranking, phi, epsilon, ErrorBudget::Direct)
                .unwrap();
        report(
            &instance,
            &ranking,
            phi,
            &format!("deterministic ε={epsilon}"),
            &approx,
        );
    }
    for epsilon in [0.1, 0.05] {
        let sampled = quantile_by_sampling(
            &instance,
            &ranking,
            phi,
            &SamplingOptions {
                epsilon,
                delta: 0.05,
                seed: 7,
            },
        )
        .unwrap();
        report(
            &instance,
            &ranking,
            phi,
            &format!("sampling ε={epsilon}"),
            &sampled,
        );
    }
}

fn report(instance: &Instance, ranking: &Ranking, phi: f64, label: &str, result: &QuantileResult) {
    let (below, equal) = rank_of_weight(instance, ranking, &result.weight).unwrap();
    let total = result.total_answers;
    let target = (phi * total as f64).floor() as u128;
    // The rank error is the distance from the target to the answer's rank window.
    let error = if target < below {
        below - target
    } else if target >= below + equal.max(1) {
        target - (below + equal.max(1) - 1)
    } else {
        0
    };
    println!(
        "{:>22} {:>14} {:>16} {:>13.3}%",
        label,
        result.weight.to_string(),
        error,
        100.0 * error as f64 / total as f64
    );
}
