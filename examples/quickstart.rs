//! Quickstart: quantiles over a join without materializing it.
//!
//! Builds a small database by hand, asks for quantiles under three different ranking
//! functions, and cross-checks each against the brute-force baseline.
//!
//! Run with `cargo run --example quickstart`.

use quantile_joins::prelude::*;

fn main() {
    // A 3-path join: R1(x1, x2) ⋈ R2(x2, x3) ⋈ R3(x3, x4).
    let r1 = Relation::from_rows(
        "R1",
        &[&[3, 0], &[14, 0], &[7, 1], &[25, 1], &[1, 2], &[9, 2]],
    )
    .unwrap();
    let r2 =
        Relation::from_rows("R2", &[&[0, 10], &[0, 11], &[1, 10], &[2, 12], &[2, 13]]).unwrap();
    let r3 = Relation::from_rows(
        "R3",
        &[
            &[10, 4],
            &[10, 40],
            &[11, 8],
            &[12, 2],
            &[13, 17],
            &[13, 30],
        ],
    )
    .unwrap();
    let instance = Instance::new(
        path_query(3),
        Database::from_relations([r1, r2, r3]).unwrap(),
    )
    .unwrap();

    println!("query       : {}", instance.query());
    println!("database    : {} tuples", instance.database_size());
    println!("join answers: {}\n", count_answers(&instance).unwrap());

    // 1. Median by MAX over the endpoints (Theorem 5.3: tractable for every acyclic JQ).
    let by_max = Ranking::max(vars(&["x1", "x4"]));
    report(&instance, &by_max, 0.5);

    // 2. Lower quartile by the partial SUM x1 + x2 + x3 (tractable side of Theorem 5.6).
    let by_partial_sum = Ranking::sum(vars(&["x1", "x2", "x3"]));
    report(&instance, &by_partial_sum, 0.25);

    // 3. Upper quartile by a lexicographic order on (x2, x4).
    let by_lex = Ranking::lex(vars(&["x2", "x4"]));
    report(&instance, &by_lex, 0.75);

    // 4. Full SUM over a 3-path is intractable exactly — the solver says so and the
    //    deterministic ε-approximation takes over (Theorem 6.2).
    let by_full_sum = Ranking::sum(instance.query().variables());
    match exact_quantile(&instance, &by_full_sum, 0.5) {
        Err(err) => println!("full SUM      : exact solver refused: {err}"),
        Ok(_) => unreachable!("the 3-path with full SUM is intractable"),
    }
    let approx =
        approximate_sum_quantile(&instance, &by_full_sum, 0.5, 0.1, ErrorBudget::Direct).unwrap();
    println!(
        "full SUM      : ε=0.1 approximate median has weight {} (answer {:?})",
        approx.weight, approx.answer
    );
}

fn report(instance: &Instance, ranking: &Ranking, phi: f64) {
    let fast = exact_quantile(instance, ranking, phi).unwrap();
    let slow =
        quantile_by_materialization(instance, ranking, phi, BaselineStrategy::FullSort).unwrap();
    println!(
        "{ranking:<14}: φ={phi:<4} → weight {} in {} pivoting iterations (baseline agrees: {})",
        fast.weight,
        fast.iterations,
        fast.weight == slow.weight
    );
    println!("                answer {:?}\n", fast.answer);
}
