//! Reproduces the worked figures of the paper on their exact hand-made instances:
//!
//! * Figure 1 — message-passing counts over `R(x1,x2), S(x1,x3), T(x2,x4), U(x4,x5)`;
//! * Figure 2 — the pivot computed for the same instance under full SUM;
//! * Example 5.1 / Figure 3 — trimming `MAX(x1,x2,x3) > 10` into three partitions;
//! * Figure 4 / Example 6.4 — the lossy-trimming sketch embedding for `x + y + z < λ`.
//!
//! Run with `cargo run --example figure_walkthrough`.

use quantile_joins::core::lossy_trim::LossySumTrimmer;
use quantile_joins::core::pivot::select_pivot;
use quantile_joins::core::trim::{MinMaxTrimmer, Trimmer};
use quantile_joins::exec::count::subtree_counts;
use quantile_joins::exec::JoinTreeContext;
use quantile_joins::prelude::*;
use quantile_joins::ranking::RankPredicate;
use quantile_joins::workload::figures;

fn main() {
    figure1();
    figure2();
    figure3();
    figure4();
}

fn figure1() {
    println!("== Figure 1: counting by message passing ==");
    let instance = figures::figure1_instance();
    let tree = figures::figure1_join_tree();
    let ctx = JoinTreeContext::build_with_tree(&instance, tree).unwrap();
    let counts = subtree_counts(&ctx);
    for node in ctx.nodes() {
        let atom = ctx.query().atom(node.atom_index);
        for (i, tuple) in node.tuples.iter().enumerate() {
            println!(
                "  {}{:?}  cnt = {}",
                atom.relation(),
                tuple,
                counts.per_tuple[node.node_id][i]
            );
        }
    }
    println!("  total |Q(D)| = {}\n", count_answers(&instance).unwrap());
}

fn figure2() {
    println!("== Figure 2: pivot selection under full SUM ==");
    let instance = figures::figure1_instance();
    let ranking = Ranking::sum(instance.query().variables());
    let pivot = select_pivot(&instance, &ranking).unwrap();
    println!("  pivot answer : {:?}", pivot.assignment);
    println!("  pivot weight : {}", pivot.weight);
    println!("  guaranteed c : {}", pivot.c);
    println!("  |Q(D)|       : {}\n", pivot.total_answers);
}

fn figure3() {
    println!("== Figure 3 / Example 5.1: trimming MAX(x1,x2,x3) > 10 ==");
    let instance = figures::example_5_1_instance();
    let ranking = Ranking::max(vars(&["x1", "x2", "x3"]));
    let trimmed = MinMaxTrimmer
        .trim(
            &instance,
            &ranking,
            &RankPredicate::greater_than(Weight::num(10.0)),
        )
        .unwrap();
    println!(
        "  original answers        : {}",
        count_answers(&instance).unwrap()
    );
    println!(
        "  answers with max > 10   : {}",
        count_answers(&trimmed).unwrap()
    );
    println!("  rewritten query         : {}", trimmed.query());
    for relation in trimmed.database().relations() {
        println!(
            "  relation {:<4} now has {} tuples",
            relation.name(),
            relation.len()
        );
    }
    println!();
}

fn figure4() {
    println!("== Figure 4 / Example 6.4: lossy trimming of x + y + z < λ ==");
    let instance = figures::figure4_instance();
    let ranking = Ranking::sum(vars(&["x", "y", "z"]));
    let trimmer = LossySumTrimmer::new(0.5);
    for lambda in [9.0, 10.5, 12.0] {
        let trimmed = trimmer
            .trim(
                &instance,
                &ranking,
                &RankPredicate::less_than(Weight::num(lambda)),
            )
            .unwrap();
        println!(
            "  λ = {:>4}: {} of {} qualifying answers represented; rewritten query {}",
            lambda,
            count_answers(&trimmed).unwrap(),
            count_answers(&instance).unwrap(),
            trimmed.query()
        );
    }
}
