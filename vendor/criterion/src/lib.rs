//! Vendored stand-in for the `criterion` benchmark harness, exposing the API
//! subset the workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] configuration (`sample_size`, `measurement_time`,
//! `warm_up_time`), `bench_function` / `bench_with_input`, [`Bencher::iter`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment has no registry access, so this crate replaces the real
//! criterion via a path dependency. Measurement is deliberately simple: per
//! sample, the routine is run in a calibrated batch and the mean per-iteration
//! time recorded; the reported statistic is the median of samples (with min/mean/
//! max alongside). That is enough to track relative regressions in CI-less
//! environments; it does not attempt criterion's bootstrap analysis.
//!
//! Set `CRITERION_JSON=/path/to/file.json` to append one JSON object per
//! benchmark, which is how `BENCH_baseline.json` at the workspace root is seeded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark: a function name plus an optional parameter rendering,
/// formatted `name/parameter` like upstream criterion.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id with an attached parameter value (e.g. an input size).
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark id carrying only a function name.
    pub fn from_name(name: impl Into<String>) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: None,
        }
    }

    fn render(&self, group: &str) -> String {
        match &self.parameter {
            Some(p) => format!("{group}/{}/{p}", self.name),
            None => format!("{group}/{}", self.name),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId::from_name(name)
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId::from_name(name)
    }
}

/// Top-level harness state. Created by [`criterion_group!`]; benches receive
/// `&mut Criterion`.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            json_path: std::env::var("CRITERION_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Applies command-line configuration. `cargo bench` passes `--bench` plus an
    /// optional filter string; unknown flags are ignored so harness pass-through
    /// arguments never break a run.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--verbose" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size"
                | "--warm-up-time" => {
                    args.next();
                }
                other if other.starts_with("--") => {}
                other => self.filter = Some(other.to_string()),
            }
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Benchmarks `f` under `id` with the harness defaults.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.run(id.into(), f);
        group.finish();
    }
}

/// A configurable collection of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark. A single sample is
    /// allowed (CI smoke runs use it to prove a bench still executes).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget over which samples are spread.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets how long to run the routine before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), move |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, move |b| f(b, input));
        self
    }

    /// Ends the group. (Statistics are reported per benchmark as they run.)
    pub fn finish(self) {}

    fn run<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = id.render(&self.name);
        if let Some(filter) = &self.criterion.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            sample_time: self.measurement_time.div_f64(self.sample_size as f64),
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full_name, self.criterion.json_path.as_deref());
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    sample_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly: a warm-up phase, then `sample_size` timed samples,
    /// each a calibrated batch of iterations. Records mean nanoseconds per
    /// iteration for every sample.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up, and calibration of the batch size while we're at it.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().div_f64(warm_iters as f64);
        let batch = (self.sample_time.as_nanos() as u64 / per_iter.as_nanos().max(1) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, name: &str, json_path: Option<&str>) {
        if self.samples_ns.is_empty() {
            println!("{name:<60} (no samples collected)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{name:<60} median {:>12}  mean {:>12}  [min {}, max {}]  ({} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            sorted.len()
        );
        if let Some(path) = json_path {
            let line = format!(
                "{{\"benchmark\": \"{name}\", \"median_ns\": {median:.1}, \"mean_ns\": {mean:.1}, \"min_ns\": {min:.1}, \"max_ns\": {max:.1}, \"samples\": {}}}",
                sorted.len()
            );
            if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(path) {
                let _ = writeln!(file, "{line}");
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring upstream criterion's
/// `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
