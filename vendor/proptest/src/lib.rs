//! Vendored stand-in for the `proptest` crate, exposing the API subset the
//! workspace's property tests use: the [`proptest!`] macro over functions whose
//! arguments are drawn `arg in strategy`, range and [`any`] strategies,
//! [`ProptestConfig::with_cases`], and the `prop_assert*` macros.
//!
//! The build environment has no registry access, so this crate replaces the real
//! proptest via a path dependency. Differences from upstream, by design:
//!
//! * inputs are sampled from a **deterministic** per-test RNG (seeded from the
//!   test's name), so failures reproduce exactly across runs and machines;
//! * there is **no shrinking** — a failing case reports its inputs verbatim;
//! * strategies are plain samplers (no value trees).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng as _;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration; only the subset the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property-test case; produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// An error carrying an assertion message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A sampler of test-case inputs. Ranges (`0u64..5000`, `1usize..=4`) and
/// [`any::<T>()`] implement this.
pub trait Strategy {
    /// The type of value produced.
    type Value: fmt::Debug;

    /// Draws one input for a test case.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a default whole-domain strategy, used by [`any`].
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}
arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("any")
    }
}

/// The whole-domain strategy for `T`: `any::<bool>()`, `any::<u64>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Seeds the per-test RNG from the test's name (FNV-1a), so every run of a given
/// property sees the same input sequence.
pub fn rng_for_test(name: &str) -> StdRng {
    use rand::SeedableRng as _;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { ... }` becomes a
/// `#[test]` that samples its arguments `config.cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let inputs = format!(
                    concat!("{{", $(" ", stringify!($arg), ": {:?}",)* " }}"),
                    $(&$arg),*
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(error) = outcome {
                    panic!(
                        "property {} failed at case {}/{}\n  inputs: {}\n  {}",
                        stringify!($name), case + 1, config.cases, inputs, error
                    );
                }
            }
        }
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
}

/// Like `assert!`, but fails only the current case (with its inputs reported).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!`, but fails only the current case (with its inputs reported).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Like `assert_ne!`, but fails only the current case (with its inputs reported).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}
