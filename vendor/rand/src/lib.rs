//! Vendored stand-in for the `rand` crate, exposing the 0.9-style API subset the
//! workspace uses: [`Rng::random_range`] over integer and float ranges,
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! The build environment has no registry access, so this crate replaces the real
//! `rand` via a path dependency. `StdRng` here is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms, which is all the workspace's
//! seeded generators and tests require. It makes **no** cryptographic claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

/// A source of random `u64`s / `u32`s. The only object-level trait; everything
/// else ([`Rng`]) is blanket-implemented on top of it.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// Panics when the range is empty, matching `rand` 0.9.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value from the "standard" distribution of `T`: uniform over all
    /// values for integers and `bool`, uniform in `[0, 1)` for floats.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `seed` (via SplitMix64,
    /// so nearby seeds still yield uncorrelated streams).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection from the top of the modulus space,
/// so every value is exactly equally likely.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i8, i16 => i16, i32 => i32, i64 => i64, isize => isize
);

/// Uniform `u128` in `[0, span)` by rejection, mirroring [`uniform_u64_below`].
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        return uniform_u64_below(rng, span as u64) as u128;
    }
    let zone = u128::MAX - (u128::MAX % span);
    loop {
        let v = u128::sample_standard(rng);
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! sample_range_128 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128);
                if span == u128::MAX {
                    return u128::sample_standard(rng) as $t;
                }
                start.wrapping_add(uniform_u128_below(rng, span + 1) as $t)
            }
        }
    )*};
}
sample_range_128!(u128, i128);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                let value = self.start + unit * (self.end - self.start);
                // Guard the open upper bound against round-up at the boundary.
                if value < self.end { value } else { <$t>::max(self.start, prior(self.end)) }
            }
        }
    )*};
}
sample_range_float!(f32, f64);

trait PriorFloat {
    fn prior_value(self) -> Self;
}
impl PriorFloat for f64 {
    fn prior_value(self) -> Self {
        f64::from_bits(self.to_bits().saturating_sub(1))
    }
}
impl PriorFloat for f32 {
    fn prior_value(self) -> Self {
        f32::from_bits(self.to_bits().saturating_sub(1))
    }
}
fn prior<T: PriorFloat>(value: T) -> T {
    value.prior_value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.random_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.random_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
    }
}
